//! Parallel fanout: shard a grid of sinks across worker threads.
//!
//! [`crate::Fanout`] drives every attached sink on the producing thread, so
//! a 40-cell cache grid costs 40 sequential simulations per access.
//! [`ParallelFanout`] keeps the same observable behavior — every sink sees
//! the full access stream, in order — but distributes the sinks across
//! worker threads. The producer buffers accesses into fixed-size chunks
//! and broadcasts each full chunk to the workers over bounded channels, so
//! the hot VM loop does no allocation and no synchronization beyond one
//! channel send per chunk per worker.
//!
//! # Scheduling
//!
//! Two worker schedules, selected by [`EngineConfig::schedule`]:
//!
//! * [`Schedule::RoundRobin`] — sink `i` is owned by worker `i % jobs` for
//!   the whole run. No coordination between workers; the right choice when
//!   every sink costs about the same per event (a grid of equal caches).
//! * [`Schedule::WorkStealing`] — sinks are *tasks* on a shared queue; any
//!   idle worker claims the next task that has unconsumed chunks, replays
//!   them, and returns the task. When per-sink cost is heterogeneous (a
//!   4 MB cache costs more per event than a 32 KB one; a [`TraceSink`]
//!   doing block-lifetime bookkeeping costs more than either), stealing
//!   keeps every worker busy instead of leaving the statically unlucky
//!   ones idle.
//!
//! # Determinism
//!
//! Under either schedule each sink consumes chunks strictly in the order
//! the producer published them, which is stream order: round-robin gives a
//! sink a dedicated worker and an ordered channel; work-stealing hands a
//! task to at most one worker at a time and the task records the next
//! chunk it needs. Sinks never interact, so every sink processes exactly
//! the sequence of accesses it would have seen under sequential
//! [`crate::Fanout`] — per-sink results are bit-identical. The property
//! tests in the workspace root enforce this for both schedules.
//!
//! # Steady-state allocation freedom
//!
//! Chunks travel as `Arc<Vec<Access>>`. Under round-robin the last worker
//! to finish a chunk reclaims the buffer (`Arc::try_unwrap`) and sends it
//! back to the producer on a recycle channel, so after warm-up the
//! producer reuses a small pool of buffers instead of allocating one per
//! chunk. Work-stealing shares chunks through a bounded window and drops
//! them when every task has claimed them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cachegc_telemetry::{EngineReport, Telemetry, WorkerStats};

use crate::event::Access;
use crate::sink::TraceSink;

fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Default events buffered before a chunk is broadcast to the workers.
///
/// 4096 events ≈ 48 KB per chunk: large enough to amortize channel
/// synchronization to well under a nanosecond per event, small enough to
/// stay resident in L1/L2 while each worker replays it.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

/// Chunks that may be in flight per worker before the producer blocks.
/// Bounds memory and applies backpressure if a worker falls behind.
const CHANNEL_DEPTH: usize = 8;

/// Chunks the work-stealing window holds before the producer blocks.
const STEAL_WINDOW: usize = 16;

/// How a [`ParallelFanout`] assigns sinks to worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Static sharding: sink `i` lives on worker `i % jobs` for the whole
    /// run. Lowest overhead; best when per-sink cost is uniform.
    #[default]
    RoundRobin,
    /// Dynamic load balancing: idle workers claim whichever sink has
    /// unconsumed chunks. Best when per-sink cost is heterogeneous.
    WorkStealing,
}

impl Schedule {
    /// Short name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::RoundRobin => "round-robin",
            Schedule::WorkStealing => "work-stealing",
        }
    }

    /// Parse a CLI spelling (`round-robin`/`rr`, `work-stealing`/`steal`/`ws`).
    pub fn parse(s: &str) -> Option<Schedule> {
        match s {
            "round-robin" | "rr" => Some(Schedule::RoundRobin),
            "work-stealing" | "steal" | "ws" => Some(Schedule::WorkStealing),
            _ => None,
        }
    }
}

/// Configuration of the parallel experiment engine: worker count, chunk
/// granularity, and scheduling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. `1` with [`Schedule::RoundRobin`] is the sequential
    /// oracle configuration drivers may special-case.
    pub jobs: usize,
    /// Events buffered per broadcast chunk.
    pub chunk_events: usize,
    /// Worker scheduling strategy.
    pub schedule: Schedule,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            chunk_events: DEFAULT_CHUNK_EVENTS,
            schedule: Schedule::RoundRobin,
        }
    }
}

impl EngineConfig {
    /// Round-robin over `jobs` workers with the default chunk size.
    pub fn jobs(jobs: usize) -> Self {
        EngineConfig {
            jobs,
            ..EngineConfig::default()
        }
    }

    /// Same configuration with a different chunk size.
    pub fn with_chunk(mut self, chunk_events: usize) -> Self {
        self.chunk_events = chunk_events;
        self
    }

    /// Same configuration with a different schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// True if this configuration buys nothing over the sequential path,
    /// so drivers should take their single-threaded oracle branch.
    pub fn is_sequential(&self) -> bool {
        self.jobs <= 1 && self.schedule == Schedule::RoundRobin
    }
}

/// A [`TraceSink`] that broadcasts the stream to sinks distributed across
/// worker threads. Drop-in replacement for [`crate::Fanout`] when the
/// attached sinks are independent (a cache grid, a set of analysis
/// instruments).
pub struct ParallelFanout<S> {
    buf: Vec<Access>,
    chunk_events: usize,
    total_sinks: usize,
    schedule: Schedule,
    /// Where the end-of-run [`EngineReport`] goes, if anyone is watching.
    telemetry: Option<Arc<Telemetry>>,
    /// Producer-side observability, reported through `telemetry` at
    /// [`ParallelFanout::into_sinks`] time.
    chunks_published: u64,
    events_published: u64,
    backpressure_ns: u64,
    queue_depth_hwm: u64,
    backend: Backend<S>,
}

enum Backend<S> {
    RoundRobin {
        txs: Vec<SyncSender<Arc<Vec<Access>>>>,
        /// Chunks each worker has finished, for producer-side queue-depth
        /// tracking (`published - consumed[i]` is worker `i`'s backlog).
        consumed: Vec<Arc<AtomicU64>>,
        recycle_rx: Receiver<Vec<Access>>,
        handles: Vec<JoinHandle<(Vec<S>, WorkerStats)>>,
    },
    Stealing {
        shared: Arc<StealShared<S>>,
        handles: Vec<JoinHandle<WorkerStats>>,
    },
}

impl<S: TraceSink + Send + 'static> ParallelFanout<S> {
    /// Shard `sinks` across `jobs` round-robin worker threads with the
    /// default chunk size. `jobs` is clamped to at least 1; workers beyond
    /// the number of sinks idle harmlessly.
    pub fn new(sinks: Vec<S>, jobs: usize) -> Self {
        Self::with_engine(sinks, &EngineConfig::jobs(jobs))
    }

    /// As [`ParallelFanout::new`] with an explicit chunk size (events per
    /// broadcast). Exposed for tests; the default is right for production.
    pub fn with_chunk(sinks: Vec<S>, jobs: usize, chunk_events: usize) -> Self {
        Self::with_engine(sinks, &EngineConfig::jobs(jobs).with_chunk(chunk_events))
    }

    /// Distribute `sinks` across workers according to `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `engine.chunk_events` is zero.
    pub fn with_engine(sinks: Vec<S>, engine: &EngineConfig) -> Self {
        Self::with_engine_observed(sinks, engine, None)
    }

    /// As [`ParallelFanout::with_engine`], reporting an [`EngineReport`]
    /// (per-worker events/chunks/steals, idle and backpressure time, queue
    /// depth high-water mark) into `telemetry` when the run completes at
    /// [`ParallelFanout::into_sinks`].
    ///
    /// # Panics
    ///
    /// Panics if `engine.chunk_events` is zero.
    pub fn with_engine_observed(
        sinks: Vec<S>,
        engine: &EngineConfig,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Self {
        assert!(engine.chunk_events > 0, "chunk size must be positive");
        let jobs = engine.jobs.max(1).min(sinks.len().max(1));
        let total_sinks = sinks.len();
        let backend = match engine.schedule {
            Schedule::RoundRobin => Self::round_robin_backend(sinks, jobs),
            Schedule::WorkStealing => Self::stealing_backend(sinks, jobs),
        };
        ParallelFanout {
            buf: Vec::with_capacity(engine.chunk_events),
            chunk_events: engine.chunk_events,
            total_sinks,
            schedule: engine.schedule,
            telemetry,
            chunks_published: 0,
            events_published: 0,
            backpressure_ns: 0,
            queue_depth_hwm: 0,
            backend,
        }
    }

    fn round_robin_backend(sinks: Vec<S>, jobs: usize) -> Backend<S> {
        // Round-robin assignment: sink i lives on worker i % jobs.
        let mut shards: Vec<Vec<S>> = (0..jobs).map(|_| Vec::new()).collect();
        for (i, sink) in sinks.into_iter().enumerate() {
            shards[i % jobs].push(sink);
        }

        let (recycle_tx, recycle_rx) = channel::<Vec<Access>>();
        let mut txs = Vec::with_capacity(jobs);
        let mut consumed = Vec::with_capacity(jobs);
        let mut handles = Vec::with_capacity(jobs);
        for mut shard in shards {
            let (tx, rx) = sync_channel::<Arc<Vec<Access>>>(CHANNEL_DEPTH);
            let recycle: Sender<Vec<Access>> = recycle_tx.clone();
            let done = Arc::new(AtomicU64::new(0));
            txs.push(tx);
            consumed.push(Arc::clone(&done));
            handles.push(std::thread::spawn(move || {
                let mut stats = WorkerStats::default();
                loop {
                    let wait = Instant::now();
                    let Ok(chunk) = rx.recv() else { break };
                    stats.idle_ns += dur_ns(wait.elapsed());
                    stats.chunks += 1;
                    stats.events += (chunk.len() * shard.len()) as u64;
                    // Sink-major replay: one sink's tag/valid arrays stay
                    // hot while it consumes the whole chunk.
                    for sink in &mut shard {
                        for &access in chunk.iter() {
                            sink.access(access);
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                    // Last owner reclaims the buffer for the producer.
                    if let Ok(mut buf) = Arc::try_unwrap(chunk) {
                        buf.clear();
                        let _ = recycle.send(buf);
                    }
                }
                (shard, stats)
            }));
        }
        Backend::RoundRobin {
            txs,
            consumed,
            recycle_rx,
            handles,
        }
    }

    fn stealing_backend(sinks: Vec<S>, jobs: usize) -> Backend<S> {
        let n_tasks = sinks.len();
        let shared = Arc::new(StealShared {
            state: Mutex::new(StealState {
                window: VecDeque::new(),
                base: 0,
                published: 0,
                done: false,
                poisoned: false,
                ready: sinks
                    .into_iter()
                    .enumerate()
                    .map(|(index, sink)| StealTask {
                        index,
                        next: 0,
                        sink,
                    })
                    .collect(),
                finished: Vec::with_capacity(n_tasks),
                n_tasks,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        });
        let handles = (0..jobs)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || steal_worker(&shared))
            })
            .collect();
        Backend::Stealing { shared, handles }
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.total_sinks
    }

    /// True if no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.total_sinks == 0
    }

    /// Number of worker threads.
    pub fn jobs(&self) -> usize {
        match &self.backend {
            Backend::RoundRobin { txs, .. } => txs.len(),
            Backend::Stealing { handles, .. } => handles.len(),
        }
    }

    /// Broadcast any buffered events to the workers.
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.chunks_published += 1;
        self.events_published += self.buf.len() as u64;
        match &mut self.backend {
            Backend::RoundRobin {
                txs,
                consumed,
                recycle_rx,
                ..
            } => {
                let next = recycle_rx
                    .try_recv()
                    .unwrap_or_else(|_| Vec::with_capacity(self.chunk_events));
                let chunk = Arc::new(std::mem::replace(&mut self.buf, next));
                for (tx, done) in txs.iter().zip(consumed.iter()) {
                    // A send that finds the channel full is backpressure:
                    // the producer stalls until the worker catches up. A
                    // worker can only be gone if it panicked; surface that
                    // at join time in `into_sinks` rather than here.
                    let t0 = Instant::now();
                    let _ = tx.send(Arc::clone(&chunk));
                    self.backpressure_ns += dur_ns(t0.elapsed());
                    let backlog = self
                        .chunks_published
                        .saturating_sub(done.load(Ordering::Relaxed));
                    self.queue_depth_hwm = self.queue_depth_hwm.max(backlog);
                }
            }
            Backend::Stealing { shared, .. } => {
                let chunk = std::mem::replace(&mut self.buf, Vec::with_capacity(self.chunk_events));
                let (wait_ns, depth) = shared.publish(chunk);
                self.backpressure_ns += wait_ns;
                self.queue_depth_hwm = self.queue_depth_hwm.max(depth as u64);
            }
        }
    }

    /// Flush, stop the workers, and return the sinks in their original
    /// order (as passed to [`ParallelFanout::new`]).
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker thread.
    pub fn into_sinks(mut self) -> Vec<S> {
        self.flush();
        let (sinks, workers) = match &mut self.backend {
            Backend::RoundRobin { txs, handles, .. } => {
                txs.clear(); // close the channels; workers drain and exit
                let jobs = handles.len();
                let mut workers = Vec::with_capacity(jobs);
                let mut shards: Vec<std::vec::IntoIter<S>> = handles
                    .drain(..)
                    .map(|h| {
                        let (shard, stats) = h.join().expect("parallel fanout worker panicked");
                        workers.push(stats);
                        shard.into_iter()
                    })
                    .collect();
                let sinks = (0..self.total_sinks)
                    .map(|i| shards[i % jobs].next().expect("shard sizes consistent"))
                    .collect();
                (sinks, workers)
            }
            Backend::Stealing { shared, handles } => {
                {
                    let mut st = shared.state.lock().expect("steal state poisoned");
                    st.done = true;
                    shared.work.notify_all();
                }
                let workers = handles
                    .drain(..)
                    .map(|h| h.join().expect("parallel fanout worker panicked"))
                    .collect();
                let mut st = shared.state.lock().expect("steal state poisoned");
                assert!(
                    st.finished.len() == st.n_tasks,
                    "all sinks accounted for at shutdown"
                );
                let mut tasks = std::mem::take(&mut st.finished);
                tasks.sort_by_key(|t| t.index);
                (tasks.into_iter().map(|t| t.sink).collect(), workers)
            }
        };
        if let Some(telemetry) = &self.telemetry {
            telemetry.record_engine(&EngineReport {
                schedule: self.schedule.name(),
                jobs: workers.len(),
                sinks: self.total_sinks,
                chunks_published: self.chunks_published,
                events_published: self.events_published,
                backpressure_ns: self.backpressure_ns,
                queue_depth_hwm: self.queue_depth_hwm,
                workers,
            });
        }
        sinks
    }
}

impl<S: TraceSink + Send + 'static> TraceSink for ParallelFanout<S> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.buf.push(access);
        if self.buf.len() >= self.chunk_events {
            self.flush();
        }
    }
}

// ---------------------------------------------------------------------
// Work-stealing backend
// ---------------------------------------------------------------------

/// A sink plus the index of the next published chunk it must consume.
/// Owned by at most one worker at a time, so consumption is in order.
struct StealTask<S> {
    index: usize,
    next: usize,
    sink: S,
}

struct StealState<S> {
    /// Published chunks not yet claimed by every task, with the count of
    /// tasks that have not claimed them. `window[i]` is global chunk
    /// `base + i`; a task's unclaimed range `[task.next, published)` is
    /// always inside the window, so memory stays bounded by the window
    /// plus what in-flight workers hold.
    window: VecDeque<(Arc<Vec<Access>>, usize)>,
    base: usize,
    published: usize,
    done: bool,
    /// A worker panicked mid-replay; everyone unwinds.
    poisoned: bool,
    /// Tasks not currently held by a worker.
    ready: Vec<StealTask<S>>,
    /// Tasks that consumed the whole stream after `done`.
    finished: Vec<StealTask<S>>,
    n_tasks: usize,
}

struct StealShared<S> {
    state: Mutex<StealState<S>>,
    /// Workers wait here for chunks, returned tasks, or shutdown.
    work: Condvar,
    /// The producer waits here for window space.
    space: Condvar,
}

impl<S> StealShared<S> {
    /// Publish a chunk; returns `(wait_ns, depth)` — how long the
    /// producer blocked on window space and the window's occupancy after
    /// the push (its queue depth).
    fn publish(&self, chunk: Vec<Access>) -> (u64, usize) {
        let mut st = self.state.lock().expect("steal state poisoned");
        if st.n_tasks == 0 {
            return (0, 0);
        }
        let mut wait_ns = 0;
        if st.window.len() >= STEAL_WINDOW && !st.poisoned {
            let t0 = Instant::now();
            while st.window.len() >= STEAL_WINDOW && !st.poisoned {
                st = self.space.wait(st).expect("steal state poisoned");
            }
            wait_ns = dur_ns(t0.elapsed());
        }
        if st.poisoned {
            return (wait_ns, 0); // shutdown; the panic surfaces at join time
        }
        let claims = st.n_tasks;
        st.window.push_back((Arc::new(chunk), claims));
        st.published += 1;
        self.work.notify_all();
        (wait_ns, st.window.len())
    }
}

/// Marks the shared state poisoned if the worker unwinds while replaying
/// a chunk (the only region where the state lock is not held).
struct PoisonOnPanic<'a, S> {
    shared: &'a StealShared<S>,
    armed: bool,
}

impl<S> Drop for PoisonOnPanic<'_, S> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut st) = self.shared.state.lock() {
                st.poisoned = true;
            }
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
    }
}

fn steal_worker<S: TraceSink>(shared: &StealShared<S>) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut st = shared.state.lock().expect("steal state poisoned");
    loop {
        if st.poisoned {
            return stats;
        }
        // Claim a task with unconsumed chunks.
        if let Some(pos) = st.ready.iter().position(|t| t.next < st.published) {
            let mut task = st.ready.swap_remove(pos);
            let to = st.published;
            let base = st.base;
            let chunks: Vec<Arc<Vec<Access>>> = (task.next..to)
                .map(|i| {
                    let slot = &mut st.window[i - base];
                    slot.1 -= 1;
                    Arc::clone(&slot.0)
                })
                .collect();
            // Drop fully claimed chunks off the window front.
            while st.window.front().is_some_and(|(_, claims)| *claims == 0) {
                st.window.pop_front();
                st.base += 1;
            }
            shared.space.notify_all();
            drop(st);

            let mut poison = PoisonOnPanic {
                shared,
                armed: true,
            };
            stats.steals += 1;
            stats.chunks += chunks.len() as u64;
            for chunk in &chunks {
                stats.events += chunk.len() as u64;
                for &access in chunk.iter() {
                    task.sink.access(access);
                }
            }
            poison.armed = false;
            task.next = to;

            st = shared.state.lock().expect("steal state poisoned");
            if st.done && task.next == st.published {
                st.finished.push(task);
            } else {
                st.ready.push(task);
            }
            // Idle workers may now have a task to claim or may be able to
            // exit; either way the state changed.
            shared.work.notify_all();
            continue;
        }
        if st.done {
            // Retire caught-up tasks, then exit once every task is retired
            // (tasks held by other workers are retired by those workers).
            let published = st.published;
            let mut i = 0;
            while i < st.ready.len() {
                if st.ready[i].next == published {
                    let t = st.ready.swap_remove(i);
                    st.finished.push(t);
                } else {
                    i += 1;
                }
            }
            if st.finished.len() == st.n_tasks {
                shared.work.notify_all();
                return stats;
            }
        }
        let t0 = Instant::now();
        st = shared.work.wait(st).expect("steal state poisoned");
        stats.idle_ns += dur_ns(t0.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Context;
    use crate::sink::{Fanout, RefCounter};

    fn stream(n: u32) -> impl Iterator<Item = Access> {
        (0..n).map(|i| {
            let addr = 0x1000_0000 + (i % 977) * 4;
            if i % 3 == 0 {
                Access::write(addr, Context::Mutator)
            } else {
                Access::read(addr, Context::Collector)
            }
        })
    }

    fn engines() -> Vec<EngineConfig> {
        let mut out = Vec::new();
        for schedule in [Schedule::RoundRobin, Schedule::WorkStealing] {
            for jobs in [1usize, 3] {
                out.push(
                    EngineConfig::jobs(jobs)
                        .with_chunk(64)
                        .with_schedule(schedule),
                );
            }
        }
        out
    }

    #[test]
    fn matches_sequential_fanout_across_chunk_boundaries() {
        // Stream lengths around the chunk size: shorter, exact, longer.
        for engine in engines() {
            for n in [0u32, 1, 7, 63, 64, 65, 128, 1000] {
                let mut seq = Fanout::new(vec![RefCounter::new(); 5]);
                let mut par = ParallelFanout::with_engine(vec![RefCounter::new(); 5], &engine);
                for a in stream(n) {
                    seq.access(a);
                    par.access(a);
                }
                let seq = seq.into_sinks();
                let par = par.into_sinks();
                assert_eq!(seq, par, "n = {n}, engine = {engine:?}");
            }
        }
    }

    #[test]
    fn order_is_preserved() {
        // Counters are order-insensitive, so check ordering via distinct
        // sinks: each position must get back the sink that went in there.
        #[derive(Debug, PartialEq)]
        struct Tagged(usize, u64);
        impl TraceSink for Tagged {
            fn access(&mut self, _: Access) {
                self.1 += 1;
            }
        }
        for schedule in [Schedule::RoundRobin, Schedule::WorkStealing] {
            let sinks: Vec<Tagged> = (0..10).map(|i| Tagged(i, 0)).collect();
            let engine = EngineConfig::jobs(4).with_chunk(16).with_schedule(schedule);
            let mut par = ParallelFanout::with_engine(sinks, &engine);
            for a in stream(100) {
                par.access(a);
            }
            let out = par.into_sinks();
            for (i, t) in out.iter().enumerate() {
                assert_eq!(t.0, i, "sink order preserved under {schedule:?}");
                assert_eq!(t.1, 100, "every sink saw every event");
            }
        }
    }

    #[test]
    fn more_jobs_than_sinks_is_fine() {
        let mut par = ParallelFanout::new(vec![RefCounter::new()], 16);
        assert_eq!(par.jobs(), 1, "jobs clamped to sink count");
        for a in stream(10) {
            par.access(a);
        }
        assert_eq!(par.into_sinks()[0].total(), 10);

        let engine = EngineConfig::jobs(16).with_schedule(Schedule::WorkStealing);
        let mut par = ParallelFanout::with_engine(vec![RefCounter::new()], &engine);
        assert_eq!(par.jobs(), 1);
        for a in stream(10) {
            par.access(a);
        }
        assert_eq!(par.into_sinks()[0].total(), 10);
    }

    #[test]
    fn empty_grid_and_empty_stream() {
        for schedule in [Schedule::RoundRobin, Schedule::WorkStealing] {
            let engine = EngineConfig::jobs(4).with_schedule(schedule);
            let par: ParallelFanout<RefCounter> = ParallelFanout::with_engine(vec![], &engine);
            assert!(par.is_empty());
            assert_eq!(par.into_sinks().len(), 0);

            let par = ParallelFanout::with_engine(vec![RefCounter::new(); 3], &engine);
            let out = par.into_sinks(); // no events at all
            assert!(out.iter().all(|c| c.total() == 0));
        }
    }

    #[test]
    fn stealing_applies_backpressure_without_losing_events() {
        // Many more chunks than the window holds: the producer must block
        // and resume without dropping or reordering anything.
        let engine = EngineConfig::jobs(2)
            .with_chunk(8)
            .with_schedule(Schedule::WorkStealing);
        let mut par = ParallelFanout::with_engine(vec![RefCounter::new(); 3], &engine);
        let n = 8 * STEAL_WINDOW as u32 * 10;
        for a in stream(n) {
            par.access(a);
        }
        let out = par.into_sinks();
        assert!(out.iter().all(|c| c.total() == u64::from(n)));
    }

    #[test]
    fn observed_run_reports_complete_worker_accounting() {
        for schedule in [Schedule::RoundRobin, Schedule::WorkStealing] {
            let telemetry = Arc::new(Telemetry::new());
            let engine = EngineConfig::jobs(3).with_chunk(64).with_schedule(schedule);
            let mut par = ParallelFanout::with_engine_observed(
                vec![RefCounter::new(); 5],
                &engine,
                Some(Arc::clone(&telemetry)),
            );
            let n = 1000u64;
            for a in stream(n as u32) {
                par.access(a);
            }
            let sinks = par.into_sinks();
            assert!(sinks.iter().all(|c| c.total() == n));
            let snap = telemetry.snapshot();
            let e = &snap.engine;
            assert_eq!(e.runs, 1, "{schedule:?}");
            assert_eq!(e.events_published, n);
            assert_eq!(e.chunks_published, n.div_ceil(64));
            assert_eq!(e.by_schedule[schedule.name()], 1);
            assert_eq!(e.workers.len(), 3);
            // Every (event, sink) pair is applied by exactly one worker.
            assert_eq!(e.events_applied(), n * 5, "{schedule:?}");
            let chunks: u64 = e.workers.iter().map(|w| w.stats.chunks).sum();
            match schedule {
                // Round-robin: every worker replays every chunk for its shard.
                Schedule::RoundRobin => assert_eq!(chunks, e.chunks_published * 3),
                // Stealing: each of the 5 tasks consumes every chunk once.
                Schedule::WorkStealing => {
                    assert_eq!(chunks, e.chunks_published * 5);
                    assert!(e.workers.iter().map(|w| w.stats.steals).sum::<u64>() >= 5);
                }
            }
        }
    }

    #[test]
    fn unobserved_run_reports_nothing() {
        let telemetry = Arc::new(Telemetry::new());
        let mut par = ParallelFanout::new(vec![RefCounter::new(); 2], 2);
        for a in stream(10) {
            par.access(a);
        }
        par.into_sinks();
        assert_eq!(telemetry.snapshot().engine.runs, 0);
    }

    #[test]
    fn schedule_parsing() {
        assert_eq!(Schedule::parse("rr"), Some(Schedule::RoundRobin));
        assert_eq!(Schedule::parse("round-robin"), Some(Schedule::RoundRobin));
        assert_eq!(Schedule::parse("ws"), Some(Schedule::WorkStealing));
        assert_eq!(Schedule::parse("steal"), Some(Schedule::WorkStealing));
        assert_eq!(
            Schedule::parse("work-stealing"),
            Some(Schedule::WorkStealing)
        );
        assert_eq!(Schedule::parse("lifo"), None);
        assert_eq!(Schedule::WorkStealing.name(), "work-stealing");
    }

    #[test]
    fn engine_config_sequential_detection() {
        assert!(EngineConfig::default().is_sequential());
        assert!(EngineConfig::jobs(1).is_sequential());
        assert!(!EngineConfig::jobs(2).is_sequential());
        assert!(!EngineConfig::jobs(1)
            .with_schedule(Schedule::WorkStealing)
            .is_sequential());
    }
}
