//! Compact trace recording and replay.
//!
//! A [`Recorder`] is a [`TraceSink`] that captures the event stream into
//! chunked `Arc<[u8]>` segments using a packed encoding, and a
//! [`RecordedTrace`] replays the captured stream — event-for-event
//! identical to the live run — into any other sink, as many times as
//! needed, without re-executing the VM.
//!
//! # Encoding
//!
//! One event is one *token* plus an optional *flags byte*:
//!
//! * The token is an LEB128 varint of `(zigzag32(addr − prev_addr) << 1)
//!   | flags_changed`. Addresses deltas are computed with wrapping u32
//!   arithmetic, so arbitrary jumps (including wraparound) round-trip.
//! * When `flags_changed` is set, the token is followed by a single flags
//!   byte packing `(kind, ctx, alloc_init)` as bits `0..=2`. Flag *runs*
//!   are thereby run-length encoded implicitly: the byte only appears at
//!   run boundaries.
//!
//! Both encoder and decoder start from `(prev_addr = 0, flags = 0)` —
//! i.e. a mutator read of address 0 — so the first event needs a flags
//! byte only if it is not a mutator read.
//!
//! The simulated programs' reference streams are dominated by long
//! monotone same-context runs (stack discipline plus linear allocation),
//! so most events encode in 1–2 bytes, versus the 8-byte in-memory
//! [`Access`]. The encoded stream is sealed into ~1 MiB `Arc<[u8]>`
//! segments at event boundaries; a clone of a [`RecordedTrace`] shares
//! the segments, so concurrent replay workers decode the same bytes
//! without copying.

use std::sync::Arc;

use crate::event::{Access, AccessKind, Context};
use crate::sink::{Fanout, TraceSink};

/// Default sealed-segment size in bytes (segments are sealed at the first
/// event boundary at or past this many bytes).
pub const DEFAULT_SEGMENT_BYTES: usize = 1 << 20;

/// Granularity of budget charges made by a metered [`Recorder`]: the
/// recorder charges ahead in chunks of this many bytes so the shared
/// budget is not touched on every event.
pub const CHARGE_CHUNK_BYTES: u64 = 64 << 10;

/// A shared byte budget a [`Recorder`] charges against while capturing.
///
/// Attach one with [`Recorder::with_budget`]; the recorder then reserves
/// bytes *ahead* of buffering them (in [`CHARGE_CHUNK_BYTES`] chunks), so
/// an implementation that tracks reservations sees every in-flight
/// capture's footprint before the memory exists. The contract:
///
/// * every successful `try_charge(n)` reserves exactly `n` bytes until a
///   matching `release`;
/// * on overflow the recorder releases everything it charged;
/// * on a successful [`Recorder::finish`] the recorder releases its
///   slack (charged − encoded), and ownership of the remaining charge —
///   exactly [`RecordedTrace::bytes`] — passes to the caller along with
///   the trace (a store typically converts it to resident bytes);
/// * a recorder dropped without `finish` releases everything it charged.
pub trait RecordBudget: Send + Sync {
    /// Try to reserve `n` more bytes; `false` means the budget is
    /// exhausted and the capture should be abandoned.
    fn try_charge(&self, n: u64) -> bool;
    /// Return `n` previously charged bytes.
    fn release(&self, n: u64);
}

/// A read-only byte image that can back a [`RecordedTrace`] without the
/// encoded payload living on the heap — e.g. a memory-mapped spill file.
/// The image must stay valid (and immutable) for its whole lifetime.
pub trait TraceImage: Send + Sync + 'static {
    /// The full image contents.
    fn bytes(&self) -> &[u8];
}

const FLAG_WRITE: u8 = 1 << 0;
const FLAG_COLLECTOR: u8 = 1 << 1;
const FLAG_ALLOC_INIT: u8 = 1 << 2;

#[inline]
fn flag_bits(a: &Access) -> u8 {
    (matches!(a.kind, AccessKind::Write) as u8)
        | ((matches!(a.ctx, Context::Collector) as u8) << 1)
        | ((a.alloc_init as u8) << 2)
}

#[inline]
fn access_from(addr: u32, flags: u8) -> Access {
    Access {
        addr,
        kind: if flags & FLAG_WRITE != 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        ctx: if flags & FLAG_COLLECTOR != 0 {
            Context::Collector
        } else {
            Context::Mutator
        },
        alloc_init: flags & FLAG_ALLOC_INIT != 0,
    }
}

#[inline]
fn zigzag32(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

#[inline]
fn unzigzag32(z: u32) -> i32 {
    ((z >> 1) as i32) ^ -((z & 1) as i32)
}

/// Decode one event the byte-at-a-time way: the scalar fallback of the
/// batch decoder, and byte-for-byte the loop [`RecordedTrace::replay`]
/// runs. Advances `i` past the token (and flags byte, when present) and
/// leaves `(addr, flags)` describing the decoded event.
#[inline]
fn decode_one(bytes: &[u8], i: &mut usize, addr: &mut u32, flags: &mut u8) {
    let mut token: u64 = 0;
    let mut shift = 0;
    loop {
        let b = bytes[*i];
        *i += 1;
        token |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if token & 1 != 0 {
        *flags = bytes[*i];
        *i += 1;
    }
    *addr = addr.wrapping_add(unzigzag32((token >> 1) as u32) as u32);
}

/// Capacity of one decoded [`EventBatch`].
pub const EVENT_BATCH: usize = 64;

/// One decoded slice of a recorded stream, in structure-of-arrays form:
/// `addrs[i]` is event `i`'s absolute address and `flags[i]` its packed
/// flag byte (write, collector, alloc-init as bits `0..=2`). Batch
/// consumers like a grid kernel read the arrays directly; [`EventBatch::get`]
/// rebuilds the [`Access`] for per-event sinks.
#[derive(Debug, Clone)]
pub struct EventBatch {
    /// Decoded absolute addresses; entries `0..len` are valid.
    pub addrs: [u32; EVENT_BATCH],
    /// Per-event packed flag bytes; entries `0..len` are valid.
    pub flags: [u8; EVENT_BATCH],
    /// Number of valid leading entries.
    pub len: usize,
}

impl EventBatch {
    fn empty() -> Self {
        EventBatch {
            addrs: [0; EVENT_BATCH],
            flags: [0; EVENT_BATCH],
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, addr: u32, flags: u8) {
        self.addrs[self.len] = addr;
        self.flags[self.len] = flags;
        self.len += 1;
    }

    /// Number of valid events in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Event `i` as an [`Access`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Access {
        assert!(i < self.len, "event {i} out of batch of {}", self.len);
        access_from(self.addrs[i], self.flags[i])
    }

    /// The batch's valid events, in stream order.
    pub fn accesses(&self) -> impl Iterator<Item = Access> + '_ {
        (0..self.len).map(move |i| access_from(self.addrs[i], self.flags[i]))
    }
}

/// What [`RecordedTrace::replay_batched`] did: how many batches reached
/// the consumer and how the events split between the SWAR fast paths and
/// the scalar fallback. `swar_events + scalar_events` always equals the
/// trace's event count.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchDecodeStats {
    /// Batches handed to the consumer.
    pub batches: u64,
    /// Events decoded by the 8×1-byte and 4×2-byte SWAR word paths.
    pub swar_events: u64,
    /// Events decoded by the scalar fallback: long tokens, flag-changing
    /// tokens, and segment tails shorter than one 8-byte word.
    pub scalar_events: u64,
}

impl BatchDecodeStats {
    /// Total events decoded.
    pub fn events(&self) -> u64 {
        self.swar_events + self.scalar_events
    }
}

/// A [`TraceSink`] that captures the event stream into compact segments.
///
/// Feed it a run (typically as one half of a `(Recorder, real_sink)`
/// tuple, so recording piggybacks on a live pass), then call
/// [`Recorder::finish`] to obtain the [`RecordedTrace`].
///
/// A byte limit can be set with [`Recorder::with_limit`]; once the
/// encoded stream would exceed it, the recorder drops everything captured
/// so far, stops encoding (subsequent events are O(1) no-ops), and
/// `finish` returns `None`. Recording failure is thus never an error —
/// the live sinks sharing the pass are unaffected.
pub struct Recorder {
    segments: Vec<Arc<[u8]>>,
    cur: Vec<u8>,
    sealed_bytes: u64,
    events: u64,
    prev_addr: u32,
    flags: u8,
    limit: u64,
    segment_bytes: usize,
    overflowed: bool,
    budget: Option<Arc<dyn RecordBudget>>,
    charged: u64,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("bytes", &self.bytes())
            .field("events", &self.events)
            .field("limit", &self.limit)
            .field("overflowed", &self.overflowed)
            .field("metered", &self.budget.is_some())
            .field("charged", &self.charged)
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder with no byte limit.
    pub fn new() -> Self {
        Self::with_limit(u64::MAX)
    }

    /// A recorder that gives up (and frees its buffers) once the encoded
    /// stream would exceed `limit` bytes.
    pub fn with_limit(limit: u64) -> Self {
        Recorder {
            segments: Vec::new(),
            cur: Vec::new(),
            sealed_bytes: 0,
            events: 0,
            prev_addr: 0,
            flags: 0,
            limit,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            overflowed: false,
            budget: None,
            charged: 0,
        }
    }

    /// Override the segment size (mainly for tests exercising segment
    /// boundaries). Clamped to at least 16 bytes.
    pub fn with_segment_bytes(mut self, bytes: usize) -> Self {
        self.segment_bytes = bytes.max(16);
        self
    }

    /// Meter every buffered byte against a shared [`RecordBudget`].
    /// Charges are made ahead of buffering in [`CHARGE_CHUNK_BYTES`]
    /// chunks; a refused charge abandons the capture exactly like a
    /// [`Recorder::with_limit`] overflow (buffers freed, charges
    /// released, `finish` returns `None`).
    pub fn with_budget(mut self, budget: Arc<dyn RecordBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Bytes currently reserved against the attached budget (0 when
    /// unmetered). Always ≥ [`Recorder::bytes`] until overflow.
    pub fn charged(&self) -> u64 {
        self.charged
    }

    /// Encoded bytes captured so far.
    pub fn bytes(&self) -> u64 {
        self.sealed_bytes + self.cur.len() as u64
    }

    /// Events captured so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// True once the byte limit was exceeded and the capture abandoned.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    fn seal(&mut self) {
        if self.cur.is_empty() {
            return;
        }
        self.sealed_bytes += self.cur.len() as u64;
        let seg = std::mem::take(&mut self.cur);
        self.segments.push(Arc::from(seg.into_boxed_slice()));
    }

    fn overflow(&mut self) {
        self.overflowed = true;
        self.segments = Vec::new();
        self.cur = Vec::new();
        self.sealed_bytes = 0;
        if let Some(budget) = &self.budget {
            budget.release(self.charged);
        }
        self.charged = 0;
    }

    /// Reserve budget ahead of buffering `n` more bytes; `false` means
    /// the budget refused and the capture must be abandoned.
    #[inline]
    fn charge_for(&mut self, n: u64) -> bool {
        let Some(budget) = &self.budget else {
            return true;
        };
        let need = self.bytes() + n;
        if need <= self.charged {
            return true;
        }
        let want = need - self.charged;
        // Ask for a whole chunk (bounded by the local limit) so the
        // shared budget isn't contended per event, but never less than
        // what this event needs.
        let ask = want.max(CHARGE_CHUNK_BYTES.min(self.limit.saturating_sub(self.charged)));
        if budget.try_charge(ask) {
            self.charged += ask;
            return true;
        }
        // The chunk didn't fit; retry with the exact need before giving
        // up — the tail of a budget is still usable space.
        if want < ask && budget.try_charge(want) {
            self.charged += want;
            return true;
        }
        false
    }

    /// Consume the recorder; `Some` holds the captured stream, `None`
    /// means the byte limit was exceeded and nothing was kept.
    ///
    /// With a budget attached, slack (charged − encoded) is released
    /// here; the final encoded size stays charged and its ownership
    /// passes to the caller with the trace.
    pub fn finish(mut self) -> Option<RecordedTrace> {
        if self.overflowed {
            return None;
        }
        self.seal();
        let bytes = self.sealed_bytes;
        if let Some(budget) = self.budget.take() {
            budget.release(self.charged.saturating_sub(bytes));
        }
        self.charged = 0;
        let segments = std::mem::take(&mut self.segments);
        Some(RecordedTrace {
            backing: Backing::Heap(Arc::from(segments.into_boxed_slice())),
            events: self.events,
            bytes,
        })
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        // A recorder abandoned without `finish` (e.g. a failed run)
        // returns everything it reserved.
        if let Some(budget) = self.budget.take() {
            budget.release(self.charged);
        }
    }
}

impl TraceSink for Recorder {
    #[inline]
    fn access(&mut self, a: Access) {
        if self.overflowed {
            return;
        }
        let flags = flag_bits(&a);
        let changed = flags != self.flags;
        let delta = a.addr.wrapping_sub(self.prev_addr) as i32;
        let mut token = ((zigzag32(delta) as u64) << 1) | changed as u64;
        let mut buf = [0u8; 6];
        let mut n = 0;
        loop {
            let byte = (token & 0x7f) as u8;
            token >>= 7;
            if token != 0 {
                buf[n] = byte | 0x80;
                n += 1;
            } else {
                buf[n] = byte;
                n += 1;
                break;
            }
        }
        if changed {
            buf[n] = flags;
            n += 1;
        }
        if self.bytes() + n as u64 > self.limit || !self.charge_for(n as u64) {
            self.overflow();
            return;
        }
        self.cur.extend_from_slice(&buf[..n]);
        self.prev_addr = a.addr;
        self.flags = flags;
        self.events += 1;
        if self.cur.len() >= self.segment_bytes {
            self.seal();
        }
    }
}

/// Where a [`RecordedTrace`]'s encoded payload lives.
#[derive(Clone)]
enum Backing {
    /// Sealed heap segments, as produced by a [`Recorder`].
    Heap(Arc<[Arc<[u8]>]>),
    /// A window into a shared read-only [`TraceImage`] (e.g. a
    /// memory-mapped spill file): no heap copy of the payload exists.
    Image {
        image: Arc<dyn TraceImage>,
        offset: usize,
        len: usize,
    },
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Heap(segs) => f.debug_tuple("Heap").field(&segs.len()).finish(),
            Backing::Image { offset, len, .. } => f
                .debug_struct("Image")
                .field("offset", offset)
                .field("len", len)
                .finish(),
        }
    }
}

/// A captured trace: cheaply cloneable (clones share the encoded
/// segments) and replayable into any [`TraceSink`] any number of times.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    backing: Backing,
    events: u64,
    bytes: u64,
}

impl RecordedTrace {
    /// A trace whose payload is a window of `len` bytes at `offset` into
    /// a shared read-only [`TraceImage`] — typically a memory-mapped
    /// spill file. The window must hold exactly the concatenated sealed
    /// segments of a recorded stream (the decoder carries its state
    /// across segment boundaries, so concatenation decodes identically);
    /// `events` must be the recorded event count.
    ///
    /// # Panics
    ///
    /// Panics if the window falls outside the image.
    pub fn from_image(image: Arc<dyn TraceImage>, offset: usize, len: usize, events: u64) -> Self {
        let total = image.bytes().len();
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= total),
            "trace window {offset}+{len} exceeds image of {total} bytes"
        );
        RecordedTrace {
            backing: Backing::Image { image, offset, len },
            events,
            bytes: len as u64,
        }
    }

    /// True when the payload is backed by a [`TraceImage`] rather than
    /// heap segments.
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Image { .. })
    }

    /// The encoded payload as in-order byte chunks (sealed segments for
    /// a heap-backed trace, one contiguous slice for an image-backed
    /// one). Concatenating the chunks yields the canonical payload — the
    /// exact bytes a spill file stores.
    pub fn payload_chunks(&self) -> PayloadChunks<'_> {
        PayloadChunks {
            inner: match &self.backing {
                Backing::Heap(segs) => ChunksInner::Heap(segs.iter()),
                Backing::Image { image, offset, len } => {
                    ChunksInner::Image(Some(&image.bytes()[*offset..*offset + *len]))
                }
            },
        }
    }

    /// Number of events in the captured stream.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Encoded size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean encoded bytes per event (0 for an empty trace).
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.bytes as f64 / self.events as f64
        }
    }

    /// Decode the stream into `sink`, event-for-event identical to the
    /// live run that was recorded.
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        let mut addr: u32 = 0;
        let mut flags: u8 = 0;
        for bytes in self.payload_chunks() {
            let mut i = 0;
            while i < bytes.len() {
                decode_one(bytes, &mut i, &mut addr, &mut flags);
                sink.access(access_from(addr, flags));
            }
        }
    }

    /// Decode the stream into [`EventBatch`] slices — the same events, in
    /// the same order, as [`RecordedTrace::replay`], but amortizing decode
    /// control flow over whole batches so one decode pass can drive many
    /// simulated configurations.
    ///
    /// The decoder is SWAR (SIMD-within-a-register): at each token
    /// boundary it loads the next 8 payload bytes as one little-endian
    /// `u64` and classifies continuation and flags-changed bits with byte
    /// masks. Two word shapes decode without any per-byte branching:
    ///
    /// * **8×1-byte**: no continuation bits, no flags-changed bits — eight
    ///   single-byte tokens whose zigzag deltas prefix-sum into eight
    ///   addresses under the current flags.
    /// * **4×2-byte**: continuation bits exactly on bytes 0/2/4/6 and no
    ///   flags-changed bits — four two-byte tokens whose 14-bit values are
    ///   extracted with shift-and-mask lane arithmetic.
    ///
    /// Any other shape (a token of 3+ bytes, a flags change, or a segment
    /// tail shorter than a word) falls back to the scalar loop for exactly
    /// one token and re-classifies. A flags byte can look like a terminal
    /// one-byte token (its high bits are always zero), so the fast paths
    /// demand *no* flags-changed bits in the word: every byte they touch
    /// is then provably a token start.
    ///
    /// Decoder state `(prev_addr, flags)` carries across segment
    /// boundaries exactly as in [`RecordedTrace::replay`] — tokens never
    /// straddle segments (the recorder seals at event boundaries), so
    /// per-segment decoding with carried state is bit-identical to
    /// decoding the concatenated payload.
    pub fn replay_batched<F: FnMut(&EventBatch)>(&self, mut consume: F) -> BatchDecodeStats {
        // Byte masks over the 8-byte window: continuation bits (bit 7 of
        // every byte), flags-changed bits (bit 0 of every byte), and the
        // 4×2-byte shape (continuation on bytes 0/2/4/6 only, with the
        // changed bit of each token — bit 0 of its first byte — clear).
        const CONT: u64 = 0x8080_8080_8080_8080;
        const CHANGED: u64 = 0x0101_0101_0101_0101;
        const CONT_2B: u64 = 0x0080_0080_0080_0080;
        const CHANGED_2B: u64 = 0x0001_0001_0001_0001;
        const LO7_2B: u64 = 0x007f_007f_007f_007f;
        let mut stats = BatchDecodeStats::default();
        let mut batch = EventBatch::empty();
        let mut flush = |batch: &mut EventBatch, batches: &mut u64| {
            if batch.len > 0 {
                *batches += 1;
                consume(batch);
                batch.len = 0;
            }
        };
        let mut addr: u32 = 0;
        let mut flags: u8 = 0;
        for bytes in self.payload_chunks() {
            let mut i = 0;
            while i + 8 <= bytes.len() {
                let word = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte window"));
                if word & (CONT | CHANGED) == 0 {
                    // Eight 1-byte tokens, no flag changes.
                    if batch.len + 8 > EVENT_BATCH {
                        flush(&mut batch, &mut stats.batches);
                    }
                    for lane in 0..8 {
                        let z = u32::from((word >> (8 * lane)) as u8) >> 1;
                        addr = addr.wrapping_add(unzigzag32(z) as u32);
                        batch.push(addr, flags);
                    }
                    stats.swar_events += 8;
                    i += 8;
                } else if word & CONT == CONT_2B && word & CHANGED_2B == 0 {
                    // Four 2-byte tokens, no flag changes: each 16-bit
                    // lane holds `lo7 | hi7 << 7`.
                    if batch.len + 4 > EVENT_BATCH {
                        flush(&mut batch, &mut stats.batches);
                    }
                    let lo = word & LO7_2B;
                    let hi = (word >> 8) & LO7_2B;
                    let lanes = lo | (hi << 7);
                    for lane in 0..4 {
                        let z = ((lanes >> (16 * lane)) & 0xffff) as u32 >> 1;
                        addr = addr.wrapping_add(unzigzag32(z) as u32);
                        batch.push(addr, flags);
                    }
                    stats.swar_events += 4;
                    i += 8;
                } else {
                    // A long token or a flags change: one scalar event,
                    // then re-classify from the new boundary.
                    if batch.len == EVENT_BATCH {
                        flush(&mut batch, &mut stats.batches);
                    }
                    decode_one(bytes, &mut i, &mut addr, &mut flags);
                    batch.push(addr, flags);
                    stats.scalar_events += 1;
                }
            }
            // Segment tail shorter than one SWAR word.
            while i < bytes.len() {
                if batch.len == EVENT_BATCH {
                    flush(&mut batch, &mut stats.batches);
                }
                decode_one(bytes, &mut i, &mut addr, &mut flags);
                batch.push(addr, flags);
                stats.scalar_events += 1;
            }
        }
        flush(&mut batch, &mut stats.batches);
        stats
    }

    /// Replay into many sinks at once on up to `jobs` threads, each worker
    /// independently decoding the shared segments into its own sink
    /// subset — no broadcast channel, embarrassingly parallel. Sinks come
    /// back in input order; per-sink results are bit-identical to a
    /// sequential [`Fanout`] replay (each sink sees the exact event
    /// stream either way).
    pub fn replay_sharded<S: TraceSink + Send>(&self, sinks: Vec<S>, jobs: usize) -> Vec<S> {
        let jobs = jobs.max(1).min(sinks.len().max(1));
        if jobs <= 1 {
            let mut fan = Fanout::new(sinks);
            self.replay(&mut fan);
            return fan.into_sinks();
        }
        let n = sinks.len();
        let mut shards: Vec<Vec<S>> = (0..jobs).map(|_| Vec::new()).collect();
        for (i, sink) in sinks.into_iter().enumerate() {
            shards[i % jobs].push(sink);
        }
        let done: Vec<Vec<S>> = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    s.spawn(move || {
                        let mut fan = Fanout::new(shard);
                        self.replay(&mut fan);
                        fan.into_sinks()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replay worker panicked"))
                .collect()
        });
        let mut shards: Vec<_> = done.into_iter().map(Vec::into_iter).collect();
        (0..n)
            .map(|i| shards[i % jobs].next().expect("shards cover all sinks"))
            .collect()
    }
}

/// Iterator over a trace's encoded payload chunks; see
/// [`RecordedTrace::payload_chunks`].
pub struct PayloadChunks<'a> {
    inner: ChunksInner<'a>,
}

enum ChunksInner<'a> {
    Heap(std::slice::Iter<'a, Arc<[u8]>>),
    Image(Option<&'a [u8]>),
}

impl<'a> Iterator for PayloadChunks<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        match &mut self.inner {
            ChunksInner::Heap(iter) => iter.next().map(|seg| &seg[..]),
            ChunksInner::Image(window) => window.take(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RefCounter;

    #[derive(Default)]
    struct VecSink(Vec<Access>);
    impl TraceSink for VecSink {
        fn access(&mut self, a: Access) {
            self.0.push(a);
        }
    }

    fn roundtrip(events: &[Access], segment_bytes: usize) -> RecordedTrace {
        let mut rec = Recorder::new().with_segment_bytes(segment_bytes);
        for &a in events {
            rec.access(a);
        }
        let trace = rec.finish().expect("unbounded recorder never overflows");
        let mut out = VecSink::default();
        trace.replay(&mut out);
        assert_eq!(out.0, events, "replay is event-for-event identical");
        assert_eq!(trace.events(), events.len() as u64);
        trace
    }

    #[test]
    fn empty_trace_replays_nothing() {
        let trace = roundtrip(&[], 64);
        assert_eq!(trace.bytes(), 0);
        assert_eq!(trace.bytes_per_event(), 0.0);
    }

    #[test]
    fn monotone_mutator_run_is_compact() {
        let events: Vec<Access> = (0..10_000)
            .map(|i| Access::read(0x1000_0000 + 4 * i, Context::Mutator))
            .collect();
        let trace = roundtrip(&events, DEFAULT_SEGMENT_BYTES);
        assert!(
            trace.bytes_per_event() <= 2.0,
            "monotone run should be ≲2 B/event, got {}",
            trace.bytes_per_event()
        );
    }

    #[test]
    fn flag_runs_and_wraparound_roundtrip() {
        let events = vec![
            Access::read(0, Context::Mutator),
            Access::read(u32::MAX, Context::Mutator), // wrapping delta -1
            Access::write(u32::MAX - 3, Context::Collector),
            Access::alloc_write(0x8000_0000, Context::Mutator),
            Access::alloc_write(0x8000_0004, Context::Mutator),
            Access::read(0x10, Context::Collector),
            Access::read(0x7fff_fff0, Context::Mutator), // near-max positive delta
        ];
        roundtrip(&events, 4096);
    }

    #[test]
    fn segment_boundaries_preserve_decoder_state() {
        // Tiny segments force many seals mid-run; deltas and flag runs
        // must carry across them.
        let mut events = Vec::new();
        for i in 0..500u32 {
            let ctx = if i % 3 == 0 {
                Context::Collector
            } else {
                Context::Mutator
            };
            events.push(Access::write(i.wrapping_mul(0x9e37_79b9), ctx));
        }
        let trace = roundtrip(&events, 16);
        assert!(trace.bytes() > 16, "multiple segments were sealed");
    }

    #[test]
    fn limit_overflow_drops_capture_and_stays_quiet() {
        let mut rec = Recorder::with_limit(8);
        for i in 0..100 {
            rec.access(Access::read(i << 20, Context::Mutator));
        }
        assert!(rec.overflowed());
        assert_eq!(rec.bytes(), 0, "overflow frees the capture");
        assert!(rec.finish().is_none());
    }

    /// A budget that tracks outstanding charges and a high-water mark.
    #[derive(Default)]
    struct LedgerBudget {
        cap: u64,
        outstanding: std::sync::Mutex<u64>,
        peak: std::sync::atomic::AtomicU64,
    }

    impl LedgerBudget {
        fn new(cap: u64) -> Arc<Self> {
            Arc::new(LedgerBudget {
                cap,
                ..Default::default()
            })
        }

        fn outstanding(&self) -> u64 {
            *self.outstanding.lock().unwrap()
        }
    }

    impl RecordBudget for LedgerBudget {
        fn try_charge(&self, n: u64) -> bool {
            let mut out = self.outstanding.lock().unwrap();
            if out.saturating_add(n) > self.cap {
                return false;
            }
            *out += n;
            self.peak
                .fetch_max(*out, std::sync::atomic::Ordering::Relaxed);
            true
        }

        fn release(&self, n: u64) {
            let mut out = self.outstanding.lock().unwrap();
            assert!(*out >= n, "released {n} bytes with only {out} charged");
            *out -= n;
        }
    }

    #[test]
    fn metered_finish_keeps_exactly_the_encoded_bytes_charged() {
        let budget = LedgerBudget::new(u64::MAX);
        let mut rec = Recorder::new().with_budget(budget.clone());
        for i in 0..1_000u32 {
            rec.access(Access::read(0x1000_0000 + 4 * i, Context::Mutator));
        }
        assert!(rec.charged() >= rec.bytes(), "charges run ahead of bytes");
        let trace = rec.finish().expect("unbounded capture");
        assert_eq!(
            budget.outstanding(),
            trace.bytes(),
            "finish releases slack and transfers the encoded size"
        );
    }

    #[test]
    fn metered_overflow_and_drop_release_every_charge() {
        let budget = LedgerBudget::new(16);
        let mut rec = Recorder::new().with_budget(budget.clone());
        for i in 0..100 {
            rec.access(Access::read(i << 20, Context::Mutator));
        }
        assert!(rec.overflowed(), "a 16-byte budget cannot hold 100 jumps");
        assert_eq!(budget.outstanding(), 0, "overflow released the charges");
        assert!(rec.finish().is_none());

        let budget = LedgerBudget::new(u64::MAX);
        let mut rec = Recorder::new().with_budget(budget.clone());
        rec.access(Access::read(0x10, Context::Mutator));
        assert!(budget.outstanding() > 0);
        drop(rec);
        assert_eq!(budget.outstanding(), 0, "drop without finish releases");
    }

    #[test]
    fn metered_recorder_uses_the_tail_of_a_small_budget() {
        // The chunk ask exceeds the budget, but the exact need fits: the
        // retry path must use the remaining tail rather than overflow.
        let budget = LedgerBudget::new(8);
        let mut rec = Recorder::new().with_budget(budget.clone());
        for i in 0..4u32 {
            rec.access(Access::read(0x100 + 4 * i, Context::Mutator));
        }
        let trace = rec.finish().expect("4 small deltas fit in 8 bytes");
        assert!(trace.bytes() <= 8);
        assert_eq!(budget.outstanding(), trace.bytes());
    }

    #[test]
    fn image_backed_trace_replays_identically_to_heap_segments() {
        struct VecImage(Vec<u8>);
        impl TraceImage for VecImage {
            fn bytes(&self) -> &[u8] {
                &self.0
            }
        }

        let events: Vec<Access> = (0..800u32)
            .map(|i| {
                if i % 5 == 0 {
                    Access::write(i.wrapping_mul(0x9e37_79b9), Context::Collector)
                } else {
                    Access::read(0x2000_0000 + 12 * i, Context::Mutator)
                }
            })
            .collect();
        // Tiny segments: the concatenated payload spans many seals, so
        // this also proves decoder state survives chunk flattening.
        let trace = roundtrip(&events, 32);
        let mut payload = vec![0xAAu8; 7]; // leading junk: window must honor offset
        for chunk in trace.payload_chunks() {
            payload.extend_from_slice(chunk);
        }
        let len = payload.len() - 7;
        payload.extend_from_slice(&[0x55; 9]); // trailing junk too
        let image: Arc<dyn TraceImage> = Arc::new(VecImage(payload));
        let mapped = RecordedTrace::from_image(image, 7, len, trace.events());
        assert!(mapped.is_mapped());
        assert_eq!(mapped.bytes(), trace.bytes());
        let mut out = VecSink::default();
        mapped.replay(&mut out);
        assert_eq!(out.0, events, "image replay is event-for-event identical");
        // The image flattens the 32-byte segments into one contiguous
        // window, so the batch decoder's SWAR words now span the former
        // seal points — and must still decode the identical stream.
        let mut batched = Vec::new();
        let stats = mapped.replay_batched(|b| batched.extend(b.accesses()));
        assert_eq!(batched, events, "image batched replay identical");
        assert_eq!(stats.events(), mapped.events());
    }

    /// Record `events` at `segment_bytes`, then demand the batched decode
    /// yields exactly the scalar replay's stream, batch boundaries and
    /// decode-stat accounting included.
    fn assert_batched_matches_scalar(events: &[Access], segment_bytes: usize) -> BatchDecodeStats {
        let mut rec = Recorder::new().with_segment_bytes(segment_bytes);
        for &a in events {
            rec.access(a);
        }
        let trace = rec.finish().expect("unbounded recorder never overflows");
        let mut scalar = VecSink::default();
        trace.replay(&mut scalar);
        let mut batched = Vec::new();
        let stats = trace.replay_batched(|b| {
            assert!(!b.is_empty() && b.len() <= EVENT_BATCH);
            batched.extend(b.accesses());
        });
        assert_eq!(
            batched, scalar.0,
            "batched decode diverged at segment size {segment_bytes}"
        );
        assert_eq!(scalar.0, events, "scalar oracle round-trips");
        assert_eq!(stats.events(), events.len() as u64, "every event accounted");
        stats
    }

    /// SplitMix64, inlined: the trace crate cannot depend on the root
    /// testkit (dependency direction), and three lines of PRNG beat an
    /// extra dev-dependency.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn batched_replay_is_bit_identical_on_adversarial_streams() {
        // Wraparound deltas, absolute rejumps, dense flag flips, segment
        // sizes 16–4096 B, and stream lengths straddling every batch-size
        // edge (shorter than one batch, exactly one, one past).
        let mut state = 0x51ab_c0ff_ee00_0001u64;
        for &seg in &[16usize, 33, 64, 256, 1024, 4096] {
            for &n in &[1usize, 3, 7, 40, 63, 64, 65, 129, 500, 4000] {
                let mut addr = 0u32;
                let events: Vec<Access> = (0..n)
                    .map(|_| {
                        let r = splitmix(&mut state);
                        addr = match r % 5 {
                            0 => addr.wrapping_add((r >> 8) as u32),  // huge jump, wraps
                            1 => addr.wrapping_add(4),                // monotone word walk
                            2 => addr.wrapping_sub((r >> 48) as u32), // negative delta
                            3 => (r >> 16) as u32,                    // absolute rejump
                            _ => addr.wrapping_add(((r >> 40) & 0xff) as u32),
                        };
                        let ctx = if r & (1 << 60) != 0 {
                            Context::Collector
                        } else {
                            Context::Mutator
                        };
                        match (r >> 61) % 3 {
                            0 => Access::read(addr, ctx),
                            1 => Access::write(addr, ctx),
                            _ => Access::alloc_write(addr, ctx),
                        }
                    })
                    .collect();
                assert_batched_matches_scalar(&events, seg);
            }
        }
    }

    #[test]
    fn monotone_run_decodes_on_the_one_byte_swar_path() {
        let events: Vec<Access> = (0..10_000)
            .map(|i| Access::read(0x1000_0000 + 4 * i, Context::Mutator))
            .collect();
        let stats = assert_batched_matches_scalar(&events, DEFAULT_SEGMENT_BYTES);
        assert!(
            stats.swar_events > 9_900,
            "a monotone word walk is 1-byte tokens: {stats:?}"
        );
    }

    #[test]
    fn strided_run_decodes_on_the_two_byte_swar_path() {
        // A 256-byte stride zigzags to a two-byte token; the whole stream
        // should ride the 4-wide lane path.
        let events: Vec<Access> = (1..=4_000u32)
            .map(|i| Access::read(256 * i, Context::Mutator))
            .collect();
        let stats = assert_batched_matches_scalar(&events, DEFAULT_SEGMENT_BYTES);
        assert!(
            stats.swar_events > 3_900,
            "a 256-byte stride is 2-byte tokens: {stats:?}"
        );
    }

    #[test]
    fn dense_flag_flips_fall_back_to_the_scalar_path() {
        // Every event changes flags, so every token carries the changed
        // bit and a flags byte — no SWAR word shape may claim it (a flags
        // byte is indistinguishable from a terminal token byte by
        // continuation bits alone).
        let events: Vec<Access> = (0..300u32)
            .map(|i| {
                if i % 2 == 0 {
                    Access::read(4 * i, Context::Mutator)
                } else {
                    Access::write(4 * i, Context::Collector)
                }
            })
            .collect();
        let stats = assert_batched_matches_scalar(&events, DEFAULT_SEGMENT_BYTES);
        assert_eq!(stats.swar_events, 0, "{stats:?}");
        assert_eq!(stats.scalar_events, 300);
    }

    #[test]
    fn batched_state_carries_across_tiny_segments() {
        // 16-byte segments: every segment tail is shorter than one SWAR
        // word, so the decoder constantly re-enters the scalar tail with
        // carried (prev_addr, flags) state.
        let mut events = Vec::new();
        for i in 0..800u32 {
            let ctx = if i % 7 == 0 {
                Context::Collector
            } else {
                Context::Mutator
            };
            events.push(Access::write(i.wrapping_mul(0x9e37_79b9), ctx));
        }
        let stats = assert_batched_matches_scalar(&events, 16);
        assert!(stats.batches >= 800 / EVENT_BATCH as u64);
    }

    #[test]
    fn sharded_replay_matches_sequential_fanout() {
        let events: Vec<Access> = (0..2_000u32)
            .map(|i| {
                if i % 7 == 0 {
                    Access::alloc_write(0x4000_0000 + 4 * i, Context::Collector)
                } else {
                    Access::read(0x1000_0000 + 8 * i, Context::Mutator)
                }
            })
            .collect();
        let trace = roundtrip(&events, 256);
        let oracle = {
            let mut fan = Fanout::new(vec![RefCounter::new(); 5]);
            trace.replay(&mut fan);
            fan.into_sinks()
        };
        for jobs in [1, 2, 3, 5, 8] {
            let out = trace.replay_sharded(vec![RefCounter::new(); 5], jobs);
            assert_eq!(out, oracle, "jobs={jobs}: sharded replay bit-identical");
        }
    }
}
