//! The simulated address-space layout.
//!
//! The paper's analysis (§7) distinguishes three block populations: *static*
//! blocks (the program, runtime structures, and the procedure-call stack
//! live in fixed areas that exist when the run starts), and *dynamic* blocks
//! (linearly allocated by the program). We use one fixed layout for the
//! whole system so that every component — allocator, collectors, VM,
//! analyses — agrees on what an address means.
//!
//! All addresses are 32-bit byte addresses, word aligned; caches are
//! virtually indexed (§4), so these virtual addresses index caches directly.

/// Bytes per machine word (the simulated machine is a 32-bit MIPS-class CPU).
pub const WORD_BYTES: u32 = 4;

/// Base of the static area: program constants, symbols, globals, runtime
/// structures, and everything allocated during program load.
pub const STATIC_BASE: u32 = 0x0010_0000;

/// Base of the procedure-call stack area (grows upward).
///
/// Area bases are offset by distinct thirds of a cache size so that the
/// three hottest regions (static globals, stack, and the allocation wave's
/// origin) do not share a cache index in any power-of-two cache up to
/// 4 MB. A base at a 4 MB multiple would systematically collide all three
/// — a layout accident, not a program property; the paper's static blocks
/// are "arranged in an essentially random fashion".
pub const STACK_BASE: u32 = 0x0815_5540;

/// Base of the dynamic (heap) area — the first semispace when a copying
/// collector is in use, or the single unbounded linear area without GC.
/// Offset by two thirds; see [`STACK_BASE`].
pub const DYNAMIC_BASE: u32 = 0x102A_AA80;

/// Base of the second semispace / old generation (offset by one fifth —
/// each region gets a *distinct* fraction so no two region bases share a
/// cache index at any power-of-two cache size; in particular the flip
/// target must not alias the stack, or every collection would park the
/// compacted hot data on the stack's cache blocks).
pub const DYNAMIC_SECOND_BASE: u32 = 0x500C_CCC0;

/// Classification of an address into the paper's block populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Static data: exists when the program starts (includes the stack area
    /// for lifetime purposes, but stack addresses classify as [`Region::Stack`]).
    Static,
    /// The procedure-call stack.
    Stack,
    /// Linearly allocated dynamic data.
    Dynamic,
}

impl Region {
    /// Classify a byte address.
    ///
    /// ```
    /// use cachegc_trace::{Region, DYNAMIC_BASE, STACK_BASE, STATIC_BASE};
    /// assert_eq!(Region::of(STATIC_BASE), Region::Static);
    /// assert_eq!(Region::of(STACK_BASE + 64), Region::Stack);
    /// assert_eq!(Region::of(DYNAMIC_BASE), Region::Dynamic);
    /// ```
    #[inline]
    pub fn of(addr: u32) -> Region {
        if addr >= DYNAMIC_BASE {
            Region::Dynamic
        } else if addr >= STACK_BASE {
            Region::Stack
        } else {
            Region::Static
        }
    }

    /// True for dynamic (heap) addresses.
    #[inline]
    pub fn is_dynamic(addr: u32) -> bool {
        addr >= DYNAMIC_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_ordered_and_disjoint() {
        const {
            assert!(STATIC_BASE < STACK_BASE);
            assert!(STACK_BASE < DYNAMIC_BASE);
            assert!(DYNAMIC_BASE < DYNAMIC_SECOND_BASE);
        }
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(Region::of(STACK_BASE - WORD_BYTES), Region::Static);
        assert_eq!(Region::of(STACK_BASE), Region::Stack);
        assert_eq!(Region::of(DYNAMIC_BASE - WORD_BYTES), Region::Stack);
        assert_eq!(Region::of(DYNAMIC_BASE), Region::Dynamic);
        assert_eq!(Region::of(DYNAMIC_SECOND_BASE), Region::Dynamic);
        assert!(Region::is_dynamic(DYNAMIC_SECOND_BASE + 1024));
        assert!(!Region::is_dynamic(STATIC_BASE));
    }
}
