//! Trace sinks: online consumers of the reference stream.

use crate::event::{Access, Context};

/// An online consumer of data-reference events.
///
/// Cache simulators, behavioral analyzers, and statistics counters all
/// implement this trait; the producing VM is generic over it so the whole
/// pipeline monomorphizes into a tight loop.
pub trait TraceSink {
    /// Consume one data reference.
    fn access(&mut self, access: Access);
}

/// `&mut S` forwards to `S`, so sinks can be borrowed into a run.
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn access(&mut self, access: Access) {
        (**self).access(access);
    }
}

impl<S: TraceSink + ?Sized> TraceSink for Box<S> {
    #[inline]
    fn access(&mut self, access: Access) {
        (**self).access(access);
    }
}

/// A sink that discards every event. Useful for running the VM purely for
/// its result or its instruction counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl NullSink {
    /// Create a discarding sink.
    pub fn new() -> Self {
        NullSink
    }
}

impl TraceSink for NullSink {
    #[inline]
    fn access(&mut self, _: Access) {}
}

/// Broadcasts each event to every attached sink, in order.
///
/// This is how one trace pass drives many cache configurations at once
/// (the paper's 8 cache sizes × 5 block sizes sweep).
pub struct Fanout<S> {
    sinks: Vec<S>,
}

impl<S: TraceSink> Fanout<S> {
    /// Create a fanout over `sinks`.
    pub fn new(sinks: Vec<S>) -> Self {
        Fanout { sinks }
    }

    /// The attached sinks.
    pub fn sinks(&self) -> &[S] {
        &self.sinks
    }

    /// Mutable access to the attached sinks.
    pub fn sinks_mut(&mut self) -> &mut [S] {
        &mut self.sinks
    }

    /// Consume the fanout, returning the sinks.
    pub fn into_sinks(self) -> Vec<S> {
        self.sinks
    }
}

impl<S: TraceSink> TraceSink for Fanout<S> {
    #[inline]
    fn access(&mut self, access: Access) {
        for s in &mut self.sinks {
            s.access(access);
        }
    }
}

/// Pairs of sinks also compose.
impl<A: TraceSink, B: TraceSink> TraceSink for (A, B) {
    #[inline]
    fn access(&mut self, access: Access) {
        self.0.access(access);
        self.1.access(access);
    }
}

/// `Option<S>` forwards when `Some` and discards when `None`, so optional
/// taps (e.g. a timeline instrument enabled by a CLI flag) compose into
/// tuple sinks without a second monomorphized pipeline.
impl<S: TraceSink> TraceSink for Option<S> {
    #[inline]
    fn access(&mut self, access: Access) {
        if let Some(s) = self {
            s.access(access);
        }
    }
}

/// Counts references by kind and context.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RefCounter {
    mutator_reads: u64,
    mutator_writes: u64,
    collector_reads: u64,
    collector_writes: u64,
    alloc_writes: u64,
}

impl RefCounter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total references seen (all contexts).
    pub fn total(&self) -> u64 {
        self.mutator_reads + self.mutator_writes + self.collector_reads + self.collector_writes
    }

    /// References made by a given context.
    pub fn by_context(&self, ctx: Context) -> u64 {
        match ctx {
            Context::Mutator => self.mutator_reads + self.mutator_writes,
            Context::Collector => self.collector_reads + self.collector_writes,
        }
    }

    /// Loads made by a given context.
    pub fn reads(&self, ctx: Context) -> u64 {
        match ctx {
            Context::Mutator => self.mutator_reads,
            Context::Collector => self.collector_reads,
        }
    }

    /// Stores made by a given context.
    pub fn writes(&self, ctx: Context) -> u64 {
        match ctx {
            Context::Mutator => self.mutator_writes,
            Context::Collector => self.collector_writes,
        }
    }

    /// Stores that initialized freshly allocated dynamic words.
    pub fn alloc_writes(&self) -> u64 {
        self.alloc_writes
    }
}

impl TraceSink for RefCounter {
    #[inline]
    fn access(&mut self, a: Access) {
        let slot = match (a.ctx, a.is_read()) {
            (Context::Mutator, true) => &mut self.mutator_reads,
            (Context::Mutator, false) => &mut self.mutator_writes,
            (Context::Collector, true) => &mut self.collector_reads,
            (Context::Collector, false) => &mut self.collector_writes,
        };
        *slot += 1;
        if a.alloc_init {
            self.alloc_writes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AccessKind;

    #[test]
    fn counter_attributes_by_context_and_kind() {
        let mut c = RefCounter::new();
        c.access(Access::read(0, Context::Mutator));
        c.access(Access::write(4, Context::Mutator));
        c.access(Access::alloc_write(8, Context::Mutator));
        c.access(Access::read(12, Context::Collector));
        assert_eq!(c.total(), 4);
        assert_eq!(c.by_context(Context::Mutator), 3);
        assert_eq!(c.by_context(Context::Collector), 1);
        assert_eq!(c.writes(Context::Mutator), 2);
        assert_eq!(c.alloc_writes(), 1);
    }

    #[test]
    fn fanout_broadcasts() {
        let mut f = Fanout::new(vec![RefCounter::new(), RefCounter::new()]);
        f.access(Access {
            addr: 0,
            kind: AccessKind::Read,
            ctx: Context::Mutator,
            alloc_init: false,
        });
        for s in f.sinks() {
            assert_eq!(s.total(), 1);
        }
    }

    #[test]
    fn tuple_composes() {
        let mut pair = (RefCounter::new(), NullSink::new());
        pair.access(Access::read(0, Context::Mutator));
        assert_eq!(pair.0.total(), 1);
    }

    #[test]
    fn option_forwards_when_some_and_discards_when_none() {
        let mut some = Some(RefCounter::new());
        some.access(Access::read(0, Context::Mutator));
        assert_eq!(some.unwrap().total(), 1);
        let mut none: Option<RefCounter> = None;
        none.access(Access::read(0, Context::Mutator));
        assert!(none.is_none());
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = RefCounter::new();
        {
            let r = &mut c;
            r.access(Access::read(0, Context::Mutator));
        }
        assert_eq!(c.total(), 1);
    }
}
