//! The bytecode instruction set and its instruction-cost model.
//!
//! Each operation charges a fixed number of abstract machine instructions,
//! calibrated so that the ratio of data references to instructions matches
//! the paper's §3 table (roughly 0.27–0.3 references per instruction for
//! orbit-compiled MIPS code).

use std::fmt;

/// One bytecode instruction. The machine is accumulator-based: most
/// operations read or write `acc`, with an explicit operand stack in
/// simulated memory for calls and primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `acc = constants[i]`.
    Const(u32),
    /// `acc = frame slot i` (an argument).
    LocalGet(u32),
    /// `frame slot i = acc` (used when boxing assigned parameters).
    LocalSet(u32),
    /// `acc = contents of the cell in frame slot i`.
    CellGet(u32),
    /// Store `acc` into the cell in frame slot i.
    CellSet(u32),
    /// `acc = current closure's capture i`.
    ClosureGet(u32),
    /// `acc = contents of the cell captured at i`.
    ClosureCellGet(u32),
    /// Store `acc` into the cell captured at i.
    ClosureCellSet(u32),
    /// `acc = global slot i`.
    GlobalGet(u32),
    /// `global slot i = acc`.
    GlobalSet(u32),
    /// Push `acc` onto the operand stack.
    Push,
    /// Box `acc` into a fresh cell; `acc = the cell`.
    MakeCell,
    /// Pop `nfree` captured values and build a closure over code object
    /// `code`; `acc = the closure`.
    MakeClosure {
        /// Index of the closure's code object.
        code: u32,
        /// Number of captured values to pop.
        nfree: u32,
    },
    /// Call the closure under `nargs` pushed arguments.
    Call(u32),
    /// Tail-call: reuse the current frame.
    TailCall(u32),
    /// Return `acc` to the caller.
    Return,
    /// Unconditional branch to code offset.
    Jump(u32),
    /// Branch to code offset if `acc` is false.
    JumpIfFalse(u32),
    /// Apply a primitive to `n` pushed arguments; result in `acc`.
    Prim(PrimOp, u32),
    /// Stop execution; `acc` is the program's value.
    Halt,
}

impl Insn {
    /// Abstract machine instructions this operation charges.
    pub fn weight(self) -> u64 {
        match self {
            Insn::Const(_) => 3,
            Insn::LocalGet(_) | Insn::LocalSet(_) | Insn::Push => 4,
            Insn::CellGet(_) | Insn::CellSet(_) => 7,
            Insn::ClosureGet(_) => 7,
            Insn::ClosureCellGet(_) | Insn::ClosureCellSet(_) => 9,
            Insn::GlobalGet(_) | Insn::GlobalSet(_) => 7,
            Insn::MakeCell => 12,
            Insn::MakeClosure { nfree, .. } => 14 + 4 * nfree as u64,
            Insn::Call(_) => 22,
            Insn::TailCall(n) => 18 + 2 * n as u64,
            Insn::Return => 18,
            Insn::Jump(_) => 2,
            Insn::JumpIfFalse(_) => 4,
            Insn::Prim(op, _) => op.weight(),
            Insn::Halt => 2,
        }
    }
}

/// The primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PrimOp {
    Cons,
    Car,
    Cdr,
    SetCar,
    SetCdr,
    PairP,
    NullP,
    EqP,
    EqvP,
    EqualP,
    Add,
    Sub,
    Mul,
    Div,
    Quotient,
    Remainder,
    Modulo,
    NumEq,
    Lt,
    Le,
    Gt,
    Ge,
    ZeroP,
    Not,
    Abs,
    Min,
    Max,
    Sqrt,
    ExactToInexact,
    InexactToExact,
    Floor,
    NumberP,
    IntegerP,
    SymbolP,
    StringP,
    VectorP,
    ProcedureP,
    BooleanP,
    List,
    MakeVector,
    VectorRef,
    VectorSet,
    VectorLength,
    MakeTable,
    TableRef,
    TableSet,
    TableCount,
    SymbolToString,
    StringLength,
    Display,
    Newline,
    Error,
    GcEpoch,
}

impl PrimOp {
    /// Abstract machine instructions this primitive charges (not counting
    /// argument pushes, which are separate instructions).
    pub fn weight(self) -> u64 {
        use PrimOp::*;
        match self {
            Car | Cdr | PairP | NullP | EqP | Not | ZeroP | BooleanP => 5,
            SymbolP | NumberP | IntegerP | StringP | VectorP | ProcedureP => 5,
            SetCar | SetCdr => 7,
            Cons => 14,
            EqvP => 7,
            EqualP => 16,
            Add | Sub | Mul | NumEq | Lt | Le | Gt | Ge => 6,
            Div | Quotient | Remainder | Modulo => 24,
            Abs | Min | Max => 7,
            Sqrt | ExactToInexact | Floor => 22,
            InexactToExact => 9,
            List => 9,
            MakeVector => 16,
            VectorRef | VectorSet | VectorLength => 9,
            MakeTable => 40,
            TableRef | TableSet => 26,
            TableCount => 7,
            SymbolToString | StringLength => 7,
            Display | Newline => 40,
            Error => 20,
            GcEpoch => 5,
        }
    }

    /// The Scheme-level name bound to this primitive.
    pub fn name(self) -> &'static str {
        use PrimOp::*;
        match self {
            Cons => "cons",
            Car => "car",
            Cdr => "cdr",
            SetCar => "set-car!",
            SetCdr => "set-cdr!",
            PairP => "pair?",
            NullP => "null?",
            EqP => "eq?",
            EqvP => "eqv?",
            EqualP => "equal?",
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Quotient => "quotient",
            Remainder => "remainder",
            Modulo => "modulo",
            NumEq => "=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            ZeroP => "zero?",
            Not => "not",
            Abs => "abs",
            Min => "min",
            Max => "max",
            Sqrt => "sqrt",
            ExactToInexact => "exact->inexact",
            InexactToExact => "inexact->exact",
            Floor => "floor",
            NumberP => "number?",
            IntegerP => "integer?",
            SymbolP => "symbol?",
            StringP => "string?",
            VectorP => "vector?",
            ProcedureP => "procedure?",
            BooleanP => "boolean?",
            List => "list",
            MakeVector => "make-vector",
            VectorRef => "vector-ref",
            VectorSet => "vector-set!",
            VectorLength => "vector-length",
            MakeTable => "make-table",
            TableRef => "table-ref",
            TableSet => "table-set!",
            TableCount => "table-count",
            SymbolToString => "symbol->string",
            StringLength => "string-length",
            Display => "display",
            Newline => "newline",
            Error => "error",
            GcEpoch => "gc-epoch",
        }
    }

    /// Every primitive, for building the global environment.
    pub fn all() -> &'static [PrimOp] {
        use PrimOp::*;
        &[
            Cons,
            Car,
            Cdr,
            SetCar,
            SetCdr,
            PairP,
            NullP,
            EqP,
            EqvP,
            EqualP,
            Add,
            Sub,
            Mul,
            Div,
            Quotient,
            Remainder,
            Modulo,
            NumEq,
            Lt,
            Le,
            Gt,
            Ge,
            ZeroP,
            Not,
            Abs,
            Min,
            Max,
            Sqrt,
            ExactToInexact,
            InexactToExact,
            Floor,
            NumberP,
            IntegerP,
            SymbolP,
            StringP,
            VectorP,
            ProcedureP,
            BooleanP,
            List,
            MakeVector,
            VectorRef,
            VectorSet,
            VectorLength,
            MakeTable,
            TableRef,
            TableSet,
            TableCount,
            SymbolToString,
            StringLength,
            Display,
            Newline,
            Error,
            GcEpoch,
        ]
    }

    /// Fixed arity when used as a first-class procedure value. Variadic
    /// fast-path uses (`list`, n-ary `+`) are handled by the compiler.
    pub fn arity(self) -> u32 {
        use PrimOp::*;
        match self {
            Newline | MakeTable | GcEpoch => 0,
            Car | Cdr | PairP | NullP | ZeroP | Not | Abs | Sqrt | ExactToInexact
            | InexactToExact | Floor | NumberP | IntegerP | SymbolP | StringP | VectorP
            | ProcedureP | BooleanP | VectorLength | TableCount | SymbolToString | StringLength
            | Display | List => 1,
            Cons | SetCar | SetCdr | EqP | EqvP | EqualP | Add | Sub | Mul | Div | Quotient
            | Remainder | Modulo | NumEq | Lt | Le | Gt | Ge | Min | Max | MakeVector
            | VectorRef | Error => 2,
            VectorSet | TableRef | TableSet => 3,
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A compiled procedure body.
#[derive(Debug, Clone)]
pub struct CodeObject {
    /// Diagnostic name ("fact", "lambda@12", "main").
    pub name: String,
    /// Number of arguments (which are the only frame locals; binding forms
    /// compile to lambda applications).
    pub arity: u32,
    /// The instructions.
    pub code: Vec<Insn>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_prims_have_unique_names() {
        let mut names = std::collections::HashSet::new();
        for op in PrimOp::all() {
            assert!(names.insert(op.name()), "duplicate name {}", op.name());
            assert!(op.weight() > 0);
        }
    }

    #[test]
    fn weights_are_positive() {
        assert!(Insn::Call(2).weight() > Insn::Const(0).weight());
        assert!(
            Insn::MakeClosure { code: 0, nfree: 5 }.weight()
                > Insn::MakeClosure { code: 0, nfree: 0 }.weight()
        );
    }
}
