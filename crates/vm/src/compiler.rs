//! The bytecode compiler.
//!
//! Orbit-style compilation choices, scaled down:
//!
//! * **Flat closures**: a lambda's free variables are copied into the
//!   closure object when it is created; nested references capture
//!   transitively through the enclosing lambdas.
//! * **Assignment conversion**: parameters that are `set!` anywhere in
//!   their scope are boxed into heap cells at procedure entry, so closures
//!   can share mutable bindings.
//! * **Binding forms are lambda applications** (after expansion), so the
//!   only frame locals are procedure arguments.
//! * **Tail calls reuse frames**, so Scheme loops run in constant stack.
//! * **Primitive fast path**: calls to unshadowed primitive names compile
//!   to direct `Prim` instructions; the same names are also bound to
//!   closure values for higher-order use.

use std::collections::HashMap;

use crate::bytecode::{CodeObject, Insn, PrimOp};
use crate::error::VmError;
use crate::expand::{expand_one, is_derived};
use crate::sexp::Sexp;

/// Constant-pool index of the unspecified value (reserved at creation).
pub(crate) const UNSPEC_CONST: u32 = 0;
/// The placeholder stored in the constant pool for the unspecified value.
pub(crate) const UNSPEC_MARKER: &str = "\u{1}unspecified";

#[derive(Debug, Clone)]
struct Capture {
    name: String,
    boxed: bool,
}

#[derive(Debug, Default)]
struct Frame {
    params: Vec<String>,
    boxed: Vec<bool>,
    captures: Vec<Capture>,
}

#[derive(Debug, Clone, Copy)]
enum Loc {
    Local { slot: u32, boxed: bool },
    Capture { idx: u32, boxed: bool },
    Global(u32),
}

/// The compiler. One instance serves a whole [`Machine`](crate::Machine)
/// lifetime: code objects, constants, and global slots accumulate across
/// compilations (prelude, then program).
#[derive(Debug)]
pub struct Compiler {
    pub(crate) codes: Vec<CodeObject>,
    pub(crate) consts: Vec<Sexp>,
    const_index: HashMap<String, u32>,
    globals: HashMap<String, u32>,
    pub(crate) global_names: Vec<String>,
    frames: Vec<Frame>,
    gensym: u32,
    prims: HashMap<&'static str, PrimOp>,
    lambda_count: u32,
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Compiler {
    /// Create an empty compiler.
    pub fn new() -> Self {
        let mut c = Compiler {
            codes: Vec::new(),
            consts: Vec::new(),
            const_index: HashMap::new(),
            globals: HashMap::new(),
            global_names: Vec::new(),
            frames: Vec::new(),
            gensym: 0,
            prims: PrimOp::all().iter().map(|op| (op.name(), *op)).collect(),
            lambda_count: 0,
        };
        let idx = c.const_idx(&Sexp::Sym(UNSPEC_MARKER.to_string()));
        debug_assert_eq!(idx, UNSPEC_CONST);
        c
    }

    /// Compiled code objects.
    pub fn codes(&self) -> &[CodeObject] {
        &self.codes
    }

    /// Number of global slots assigned so far.
    pub fn global_count(&self) -> u32 {
        self.global_names.len() as u32
    }

    /// The global slot bound to `name`, creating it if new.
    pub fn global_slot(&mut self, name: &str) -> u32 {
        if let Some(&slot) = self.globals.get(name) {
            return slot;
        }
        let slot = self.global_names.len() as u32;
        self.globals.insert(name.to_string(), slot);
        self.global_names.push(name.to_string());
        slot
    }

    /// The name bound to a global slot.
    pub fn global_name(&self, slot: u32) -> &str {
        &self.global_names[slot as usize]
    }

    /// Compile a sequence of top-level forms into a "main" code object,
    /// returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Compile`] on malformed programs.
    pub fn compile_program(&mut self, forms: &[Sexp]) -> Result<u32, VmError> {
        let forms: Vec<Sexp> = forms
            .iter()
            .map(|f| self.expand_all(f))
            .collect::<Result<_, _>>()?;
        self.frames.push(Frame::default());
        let mut code = Vec::new();
        let result: Result<(), VmError> =
            forms.iter().try_for_each(|f| self.toplevel(f, &mut code));
        let frame = self.frames.pop().expect("frame stack imbalance");
        result?;
        debug_assert!(frame.captures.is_empty(), "top level cannot capture");
        code.push(Insn::Halt);
        let idx = self.codes.len() as u32;
        self.codes.push(CodeObject {
            name: format!("main#{idx}"),
            arity: 0,
            code,
        });
        Ok(idx)
    }

    // ------------------------------------------------------------------
    // Expansion
    // ------------------------------------------------------------------

    fn expand_all(&mut self, form: &Sexp) -> Result<Sexp, VmError> {
        let items = match form {
            Sexp::List(items) if !items.is_empty() => items,
            _ => return Ok(form.clone()),
        };
        if let Some(head) = items[0].as_sym() {
            match head {
                "quote" => return Ok(form.clone()),
                h if is_derived(h) => {
                    let once = expand_one(items, &mut self.gensym)?;
                    return self.expand_all(&once);
                }
                "define"
                    // (define (f a ...) body ...) => (define f (lambda (a ...) body ...))
                    if items.len() >= 2 => {
                        if let Sexp::List(sig) = &items[1] {
                            if sig.is_empty() {
                                return Err(VmError::Compile("define: empty signature".into()));
                            }
                            let mut lambda = vec![Sexp::sym("lambda"), Sexp::List(sig[1..].to_vec())];
                            lambda.extend_from_slice(&items[2..]);
                            let rewritten = Sexp::List(vec![
                                Sexp::sym("define"),
                                sig[0].clone(),
                                Sexp::List(lambda),
                            ]);
                            return self.expand_all(&rewritten);
                        }
                    }
                "lambda" => {
                    if items.len() < 3 {
                        return Err(VmError::Compile(format!("lambda: bad form {form}")));
                    }
                    let mut out = vec![items[0].clone(), items[1].clone()];
                    for body in &items[2..] {
                        out.push(self.expand_all(body)?);
                    }
                    return Ok(Sexp::List(out));
                }
                "set!" => {
                    if items.len() != 3 {
                        return Err(VmError::Compile(format!("set!: bad form {form}")));
                    }
                    return Ok(Sexp::List(vec![
                        items[0].clone(),
                        items[1].clone(),
                        self.expand_all(&items[2])?,
                    ]));
                }
                _ => {}
            }
        }
        let expanded: Vec<Sexp> = items
            .iter()
            .map(|i| self.expand_all(i))
            .collect::<Result<_, _>>()?;
        Ok(Sexp::List(expanded))
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn toplevel(&mut self, form: &Sexp, code: &mut Vec<Insn>) -> Result<(), VmError> {
        if let Some(items) = form.as_list() {
            match items.first().and_then(Sexp::as_sym) {
                Some("define") => {
                    let name = items
                        .get(1)
                        .and_then(Sexp::as_sym)
                        .ok_or_else(|| VmError::Compile(format!("define: bad form {form}")))?
                        .to_string();
                    if items.len() != 3 {
                        return Err(VmError::Compile(format!("define: bad form {form}")));
                    }
                    let slot = self.global_slot(&name);
                    self.expr_named(&items[2], code, false, Some(&name))?;
                    code.push(Insn::GlobalSet(slot));
                    return Ok(());
                }
                Some("begin") => {
                    return items[1..].iter().try_for_each(|f| self.toplevel(f, code));
                }
                _ => {}
            }
        }
        self.expr(form, code, false)
    }

    // ------------------------------------------------------------------
    // Expressions (post-expansion core forms only)
    // ------------------------------------------------------------------

    fn expr(&mut self, form: &Sexp, code: &mut Vec<Insn>, tail: bool) -> Result<(), VmError> {
        self.expr_named(form, code, tail, None)
    }

    fn expr_named(
        &mut self,
        form: &Sexp,
        code: &mut Vec<Insn>,
        tail: bool,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        match form {
            Sexp::Int(_) | Sexp::Float(_) | Sexp::Str(_) | Sexp::Char(_) | Sexp::Bool(_) => {
                let idx = self.const_idx(form);
                code.push(Insn::Const(idx));
                Ok(())
            }
            Sexp::Sym(s) => self.variable(s, code),
            Sexp::List(items) if items.is_empty() => {
                Err(VmError::Compile("empty application ()".into()))
            }
            Sexp::List(items) => self.combination(items, code, tail, name),
        }
    }

    fn variable(&mut self, name: &str, code: &mut Vec<Insn>) -> Result<(), VmError> {
        let insn = match self.resolve(name) {
            Loc::Local { slot, boxed: false } => Insn::LocalGet(slot),
            Loc::Local { slot, boxed: true } => Insn::CellGet(slot),
            Loc::Capture { idx, boxed: false } => Insn::ClosureGet(idx),
            Loc::Capture { idx, boxed: true } => Insn::ClosureCellGet(idx),
            Loc::Global(slot) => Insn::GlobalGet(slot),
        };
        code.push(insn);
        Ok(())
    }

    fn combination(
        &mut self,
        items: &[Sexp],
        code: &mut Vec<Insn>,
        tail: bool,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        match items[0].as_sym() {
            Some("quote") => {
                if items.len() != 2 {
                    return Err(VmError::Compile("quote: bad form".into()));
                }
                let idx = self.const_idx(&items[1]);
                code.push(Insn::Const(idx));
                Ok(())
            }
            Some("if") => self.if_form(items, code, tail),
            Some("set!") => self.set_form(items, code),
            Some("lambda") => self.lambda_form(items, code, name),
            Some("begin") => self.body(&items[1..], code, tail),
            Some("define") => Err(VmError::Compile(
                "define is only allowed at top level".into(),
            )),
            _ => self.call(items, code, tail),
        }
    }

    fn if_form(&mut self, items: &[Sexp], code: &mut Vec<Insn>, tail: bool) -> Result<(), VmError> {
        if items.len() != 3 && items.len() != 4 {
            return Err(VmError::Compile("if: needs 2 or 3 operands".into()));
        }
        self.expr(&items[1], code, false)?;
        let jf = code.len();
        code.push(Insn::JumpIfFalse(0));
        self.expr(&items[2], code, tail)?;
        let jend = code.len();
        code.push(Insn::Jump(0));
        code[jf] = Insn::JumpIfFalse(code.len() as u32);
        match items.get(3) {
            Some(alt) => self.expr(alt, code, tail)?,
            None => code.push(Insn::Const(UNSPEC_CONST)),
        }
        code[jend] = Insn::Jump(code.len() as u32);
        Ok(())
    }

    fn set_form(&mut self, items: &[Sexp], code: &mut Vec<Insn>) -> Result<(), VmError> {
        let name = items
            .get(1)
            .and_then(Sexp::as_sym)
            .ok_or_else(|| VmError::Compile("set!: bad target".into()))?
            .to_string();
        self.expr(&items[2], code, false)?;
        let insn = match self.resolve(&name) {
            Loc::Local { slot, boxed: true } => Insn::CellSet(slot),
            Loc::Capture { idx, boxed: true } => Insn::ClosureCellSet(idx),
            Loc::Global(slot) => Insn::GlobalSet(slot),
            // An assigned local is always boxed by the enclosing lambda, but
            // the top-level frame has no entry boxing; treat as plain store.
            Loc::Local { slot, boxed: false } => Insn::LocalSet(slot),
            Loc::Capture { .. } => {
                return Err(VmError::Compile(format!(
                    "set!: {name} captured without a box"
                )));
            }
        };
        code.push(insn);
        code.push(Insn::Const(UNSPEC_CONST));
        Ok(())
    }

    fn lambda_form(
        &mut self,
        items: &[Sexp],
        code: &mut Vec<Insn>,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        let params: Vec<String> = match &items[1] {
            Sexp::List(ps) => ps
                .iter()
                .map(|p| p.as_sym().map(str::to_string))
                .collect::<Option<_>>()
                .ok_or_else(|| VmError::Compile("lambda: bad parameter list".into()))?,
            _ => {
                return Err(VmError::Compile(
                    "lambda: variadic parameters unsupported".into(),
                ))
            }
        };
        let body = &items[2..];
        let boxed: Vec<bool> = params
            .iter()
            .map(|p| body.iter().any(|f| is_assigned(p, f)))
            .collect();

        self.frames.push(Frame {
            params: params.clone(),
            boxed: boxed.clone(),
            captures: Vec::new(),
        });
        let mut inner = Vec::new();
        for (i, b) in boxed.iter().enumerate() {
            if *b {
                inner.push(Insn::LocalGet(i as u32));
                inner.push(Insn::MakeCell);
                inner.push(Insn::LocalSet(i as u32));
            }
        }
        let result = self.body(body, &mut inner, true);
        let frame = self.frames.pop().expect("frame stack imbalance");
        result?;
        inner.push(Insn::Return);

        let code_idx = self.codes.len() as u32;
        let code_name = match name {
            Some(n) => n.to_string(),
            None => {
                self.lambda_count += 1;
                format!("lambda@{}", self.lambda_count)
            }
        };
        self.codes.push(CodeObject {
            name: code_name,
            arity: params.len() as u32,
            code: inner,
        });

        // In the parent: push each captured binding (raw slot contents, so
        // boxed variables share their cell), then build the closure.
        for cap in &frame.captures {
            let insn = match self.resolve(&cap.name) {
                Loc::Local { slot, .. } => Insn::LocalGet(slot),
                Loc::Capture { idx, .. } => Insn::ClosureGet(idx),
                Loc::Global(_) => {
                    return Err(VmError::Compile(format!("capture of global {}", cap.name)));
                }
            };
            code.push(insn);
            code.push(Insn::Push);
        }
        code.push(Insn::MakeClosure {
            code: code_idx,
            nfree: frame.captures.len() as u32,
        });
        Ok(())
    }

    fn body(&mut self, forms: &[Sexp], code: &mut Vec<Insn>, tail: bool) -> Result<(), VmError> {
        match forms {
            [] => {
                code.push(Insn::Const(UNSPEC_CONST));
                Ok(())
            }
            [butlast @ .., last] => {
                for f in butlast {
                    self.expr(f, code, false)?;
                }
                self.expr(last, code, tail)
            }
        }
    }

    fn call(&mut self, items: &[Sexp], code: &mut Vec<Insn>, tail: bool) -> Result<(), VmError> {
        let nargs = items.len() - 1;
        // Primitive fast path: an unshadowed primitive name in operator
        // position compiles to a Prim instruction.
        if let Some(head) = items[0].as_sym() {
            if let Some(&op) = self.prims.get(head) {
                if matches!(self.resolve(head), Loc::Global(_)) {
                    return self.prim_call(op, &items[1..], code);
                }
            }
        }
        self.expr(&items[0], code, false)?;
        code.push(Insn::Push);
        for arg in &items[1..] {
            self.expr(arg, code, false)?;
            code.push(Insn::Push);
        }
        code.push(if tail {
            Insn::TailCall(nargs as u32)
        } else {
            Insn::Call(nargs as u32)
        });
        Ok(())
    }

    fn prim_call(
        &mut self,
        op: PrimOp,
        args: &[Sexp],
        code: &mut Vec<Insn>,
    ) -> Result<(), VmError> {
        use PrimOp::*;
        let n = args.len();
        match op {
            // Variadic arithmetic folds left over binary operations.
            Add | Mul | Min | Max | Sub | Div => {
                let identity: Option<i64> = match op {
                    Add => Some(0),
                    Mul => Some(1),
                    _ => None,
                };
                match (n, identity) {
                    (0, Some(id)) => {
                        let idx = self.const_idx(&Sexp::Int(id));
                        code.push(Insn::Const(idx));
                        return Ok(());
                    }
                    (0, None) => {
                        return Err(VmError::Compile(format!("{op}: needs arguments")));
                    }
                    (1, _) if matches!(op, Sub | Div) => {
                        // (- x) = (0 - x); (/ x) = (1 / x).
                        let id = if op == Sub { 0 } else { 1 };
                        let idx = self.const_idx(&Sexp::Int(id));
                        code.push(Insn::Const(idx));
                        code.push(Insn::Push);
                        self.expr(&args[0], code, false)?;
                        code.push(Insn::Push);
                        code.push(Insn::Prim(op, 2));
                        return Ok(());
                    }
                    (1, _) => return self.expr(&args[0], code, false),
                    _ => {}
                }
                self.expr(&args[0], code, false)?;
                code.push(Insn::Push);
                for arg in &args[1..] {
                    self.expr(arg, code, false)?;
                    code.push(Insn::Push);
                    code.push(Insn::Prim(op, 2));
                    code.push(Insn::Push);
                }
                code.pop(); // final Push is not needed; result stays in acc
                            // The final Prim left its result in acc; remove the stray
                            // sequencing artifact: the loop pushes Prim then Push, so the
                            // last pop above removed the trailing Push.
                Ok(())
            }
            List => {
                for arg in args {
                    self.expr(arg, code, false)?;
                    code.push(Insn::Push);
                }
                code.push(Insn::Prim(List, n as u32));
                Ok(())
            }
            Display | Error => {
                if n == 0 || n > 2 {
                    return Err(VmError::Compile(format!("{op}: needs 1 or 2 arguments")));
                }
                for arg in args {
                    self.expr(arg, code, false)?;
                    code.push(Insn::Push);
                }
                code.push(Insn::Prim(op, n as u32));
                Ok(())
            }
            _ => {
                if n as u32 != op.arity() {
                    return Err(VmError::Compile(format!(
                        "{op}: needs {} arguments, got {n}",
                        op.arity()
                    )));
                }
                for arg in args {
                    self.expr(arg, code, false)?;
                    code.push(Insn::Push);
                }
                code.push(Insn::Prim(op, n as u32));
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Variable resolution
    // ------------------------------------------------------------------

    fn resolve(&mut self, name: &str) -> Loc {
        let top = self.frames.len() - 1;
        match self.resolve_at(top, name) {
            Some(loc) => loc,
            None => Loc::Global(self.global_slot(name)),
        }
    }

    fn resolve_at(&mut self, idx: usize, name: &str) -> Option<Loc> {
        let f = &self.frames[idx];
        if let Some(i) = f.params.iter().position(|p| p == name) {
            return Some(Loc::Local {
                slot: i as u32,
                boxed: f.boxed[i],
            });
        }
        if let Some(j) = f.captures.iter().position(|c| c.name == name) {
            return Some(Loc::Capture {
                idx: j as u32,
                boxed: f.captures[j].boxed,
            });
        }
        if idx == 0 {
            return None;
        }
        let parent = self.resolve_at(idx - 1, name)?;
        let boxed = match parent {
            Loc::Local { boxed, .. } | Loc::Capture { boxed, .. } => boxed,
            Loc::Global(_) => unreachable!("resolve_at never returns Global"),
        };
        let f = &mut self.frames[idx];
        f.captures.push(Capture {
            name: name.to_string(),
            boxed,
        });
        Some(Loc::Capture {
            idx: (f.captures.len() - 1) as u32,
            boxed,
        })
    }

    fn const_idx(&mut self, datum: &Sexp) -> u32 {
        let key = datum.to_string();
        if let Some(&i) = self.const_index.get(&key) {
            return i;
        }
        let i = self.consts.len() as u32;
        self.consts.push(datum.clone());
        self.const_index.insert(key, i);
        i
    }
}

/// Is `name` the target of a `set!` anywhere in `form`, outside nested
/// scopes that rebind it?
fn is_assigned(name: &str, form: &Sexp) -> bool {
    let items = match form.as_list() {
        Some(items) if !items.is_empty() => items,
        _ => return false,
    };
    match items[0].as_sym() {
        Some("quote") => false,
        Some("set!") => {
            items.get(1).and_then(Sexp::as_sym) == Some(name)
                || items.get(2).is_some_and(|e| is_assigned(name, e))
        }
        Some("lambda") => {
            let shadowed = items
                .get(1)
                .and_then(Sexp::as_list)
                .is_some_and(|ps| ps.iter().any(|p| p.as_sym() == Some(name)));
            !shadowed && items[2..].iter().any(|f| is_assigned(name, f))
        }
        _ => items.iter().any(|f| is_assigned(name, f)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read;

    fn compile(src: &str) -> (Compiler, u32) {
        let forms = read(src).unwrap();
        let mut c = Compiler::new();
        let main = c.compile_program(&forms).unwrap();
        (c, main)
    }

    #[test]
    fn constants_are_deduplicated() {
        let (c, _) = compile("(+ 1 1 1)");
        let ones = c.consts.iter().filter(|s| **s == Sexp::Int(1)).count();
        assert_eq!(ones, 1);
    }

    #[test]
    fn prim_fast_path_used_for_unshadowed_names() {
        let (c, main) = compile("(car '(1))");
        let code = &c.codes[main as usize].code;
        assert!(
            code.iter().any(|i| matches!(i, Insn::Prim(PrimOp::Car, 1))),
            "{code:?}"
        );
        assert!(!code.iter().any(|i| matches!(i, Insn::Call(_))));
    }

    #[test]
    fn shadowed_prim_name_uses_general_call() {
        let (c, _) = compile("((lambda (car) (car 1)) (lambda (x) x))");
        let user = c
            .codes
            .iter()
            .find(|co| co.arity == 1 && co.name.starts_with("lambda"))
            .unwrap();
        assert!(
            user.code.iter().any(|i| matches!(i, Insn::TailCall(1))),
            "shadowed car is a real call: {:?}",
            user.code
        );
    }

    #[test]
    fn tail_position_uses_tail_call() {
        let (c, _) = compile("(define (loop x) (loop x))");
        let f = c.codes.iter().find(|co| co.name == "loop").unwrap();
        assert!(f.code.iter().any(|i| matches!(i, Insn::TailCall(1))));
        assert!(!f.code.iter().any(|i| matches!(i, Insn::Call(_))));
    }

    #[test]
    fn non_tail_call_is_plain_call() {
        let (c, _) = compile("(define (f x) (+ (f x) 1))");
        let f = c.codes.iter().find(|co| co.name == "f").unwrap();
        assert!(f.code.iter().any(|i| matches!(i, Insn::Call(1))));
    }

    #[test]
    fn free_variables_are_captured() {
        let (c, _) = compile("(define (adder n) (lambda (x) (+ x n)))");
        let inner = c
            .codes
            .iter()
            .find(|co| co.name.starts_with("lambda"))
            .unwrap();
        assert!(
            inner.code.iter().any(|i| matches!(i, Insn::ClosureGet(0))),
            "{:?}",
            inner.code
        );
        let outer = c.codes.iter().find(|co| co.name == "adder").unwrap();
        assert!(outer
            .code
            .iter()
            .any(|i| matches!(i, Insn::MakeClosure { nfree: 1, .. })));
    }

    #[test]
    fn assigned_params_are_boxed() {
        let (c, _) = compile("(define (f x) (set! x 1) x)");
        let f = c.codes.iter().find(|co| co.name == "f").unwrap();
        assert!(f.code.iter().any(|i| matches!(i, Insn::MakeCell)));
        assert!(f.code.iter().any(|i| matches!(i, Insn::CellSet(0))));
        assert!(f.code.iter().any(|i| matches!(i, Insn::CellGet(0))));
    }

    #[test]
    fn unassigned_params_are_not_boxed() {
        let (c, _) = compile("(define (f x) x)");
        let f = c.codes.iter().find(|co| co.name == "f").unwrap();
        assert!(!f.code.iter().any(|i| matches!(i, Insn::MakeCell)));
    }

    #[test]
    fn variadic_add_folds() {
        let (c, main) = compile("(+ 1 2 3 4)");
        let adds = c.codes[main as usize]
            .code
            .iter()
            .filter(|i| matches!(i, Insn::Prim(PrimOp::Add, 2)))
            .count();
        assert_eq!(adds, 3);
    }

    #[test]
    fn arity_errors_are_reported() {
        let forms = read("(car 1 2)").unwrap();
        assert!(Compiler::new().compile_program(&forms).is_err());
        let forms = read("(define x)").unwrap();
        assert!(Compiler::new().compile_program(&forms).is_err());
        let forms = read("((lambda (x) (define y 1) y) 2)").unwrap();
        assert!(Compiler::new().compile_program(&forms).is_err());
    }

    #[test]
    fn assigned_analysis_respects_shadowing() {
        let f = read("(lambda (x) (set! x 1))").unwrap().remove(0);
        assert!(!is_assigned("x", &f), "inner binding shadows");
        let g = read("(lambda (y) (set! x 1))").unwrap().remove(0);
        assert!(is_assigned("x", &g));
        let q = read("(quote (set! x 1))").unwrap().remove(0);
        assert!(!is_assigned("x", &q));
    }
}
