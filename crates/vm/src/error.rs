//! VM error types.

use std::error::Error;
use std::fmt;

/// Anything that can go wrong while reading, compiling, or running a
/// program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Malformed source text.
    Read(String),
    /// A form the compiler rejects (bad special form, arity error in a
    /// binding form, ...).
    Compile(String),
    /// A runtime type or arity error, or a call to the `error` primitive.
    Runtime(String),
    /// The collector could not reclaim enough memory to continue.
    OutOfMemory(String),
    /// The simulated procedure-call stack exceeded its address region.
    StackOverflow,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Read(m) => write!(f, "read error: {m}"),
            VmError::Compile(m) => write!(f, "compile error: {m}"),
            VmError::Runtime(m) => write!(f, "runtime error: {m}"),
            VmError::OutOfMemory(m) => write!(f, "out of memory: {m}"),
            VmError::StackOverflow => write!(f, "stack overflow"),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_prefixed() {
        assert_eq!(VmError::Read("x".into()).to_string(), "read error: x");
        assert_eq!(VmError::StackOverflow.to_string(), "stack overflow");
    }
}
