//! Expansion of derived forms into the core language.
//!
//! The core forms are `quote`, `if`, `set!`, `lambda`, `begin`, `define`,
//! and application. Everything else (`let`, `let*`, `letrec`, named `let`,
//! `cond`, `and`, `or`, `when`, `unless`) is rewritten here. Binding forms
//! become lambda applications, so the compiler's only variables are
//! procedure parameters.

use crate::error::VmError;
use crate::sexp::Sexp;

fn err(msg: impl Into<String>) -> VmError {
    VmError::Compile(msg.into())
}

fn list(items: Vec<Sexp>) -> Sexp {
    Sexp::List(items)
}

fn sym(s: &str) -> Sexp {
    Sexp::sym(s)
}

/// Generate a symbol no reader-produced program can contain.
fn gensym(counter: &mut u32) -> Sexp {
    let s = format!("\u{1}g{counter}");
    *counter += 1;
    Sexp::Sym(s)
}

/// True if `head` names a derived form this module expands.
pub(crate) fn is_derived(head: &str) -> bool {
    matches!(
        head,
        "let" | "let*" | "letrec" | "cond" | "and" | "or" | "when" | "unless"
    )
}

/// Expand one level of a derived form. The caller re-examines the result.
///
/// # Errors
///
/// Returns [`VmError::Compile`] on malformed derived forms.
pub(crate) fn expand_one(items: &[Sexp], counter: &mut u32) -> Result<Sexp, VmError> {
    let head = items[0]
        .as_sym()
        .expect("expand_one called on non-symbol head");
    match head {
        "let" => expand_let(items, counter),
        "let*" => expand_let_star(items),
        "letrec" => expand_letrec(items),
        "cond" => expand_cond(items, counter),
        "and" => expand_and(items),
        "or" => expand_or(items, counter),
        "when" => {
            if items.len() < 3 {
                return Err(err("when: needs a test and a body"));
            }
            let mut body = vec![sym("begin")];
            body.extend_from_slice(&items[2..]);
            Ok(list(vec![sym("if"), items[1].clone(), list(body)]))
        }
        "unless" => {
            if items.len() < 3 {
                return Err(err("unless: needs a test and a body"));
            }
            let mut body = vec![sym("begin")];
            body.extend_from_slice(&items[2..]);
            Ok(list(vec![
                sym("if"),
                list(vec![sym("not"), items[1].clone()]),
                list(body),
            ]))
        }
        other => Err(err(format!("not a derived form: {other}"))),
    }
}

fn parse_bindings(form: &Sexp, what: &str) -> Result<(Vec<Sexp>, Vec<Sexp>), VmError> {
    let bindings = form
        .as_list()
        .ok_or_else(|| err(format!("{what}: bad binding list")))?;
    let mut names = Vec::new();
    let mut inits = Vec::new();
    for b in bindings {
        match b.as_list() {
            Some([name @ Sexp::Sym(_), init]) => {
                names.push(name.clone());
                inits.push(init.clone());
            }
            _ => return Err(err(format!("{what}: bad binding {b}"))),
        }
    }
    Ok((names, inits))
}

fn expand_let(items: &[Sexp], counter: &mut u32) -> Result<Sexp, VmError> {
    // Named let: (let loop ((x a) ...) body ...)
    if items.len() >= 3 && items[1].as_sym().is_some() {
        let name = items[1].clone();
        let (names, inits) = parse_bindings(&items[2], "named let")?;
        let mut lambda = vec![sym("lambda"), list(names)];
        lambda.extend_from_slice(&items[3..]);
        if items.len() < 4 {
            return Err(err("named let: empty body"));
        }
        let binding = list(vec![name.clone(), list(lambda)]);
        let mut call = vec![list(vec![sym("letrec"), list(vec![binding]), name])];
        call.extend(inits);
        return Ok(list(call));
    }
    if items.len() < 3 {
        return Err(err("let: needs bindings and a body"));
    }
    let (names, inits) = parse_bindings(&items[1], "let")?;
    let mut lambda = vec![sym("lambda"), list(names)];
    lambda.extend_from_slice(&items[2..]);
    let mut call = vec![list(lambda)];
    call.extend(inits);
    let _ = counter;
    Ok(list(call))
}

fn expand_let_star(items: &[Sexp]) -> Result<Sexp, VmError> {
    if items.len() < 3 {
        return Err(err("let*: needs bindings and a body"));
    }
    let bindings = items[1]
        .as_list()
        .ok_or_else(|| err("let*: bad binding list"))?;
    if bindings.len() <= 1 {
        let mut out = vec![sym("let"), items[1].clone()];
        out.extend_from_slice(&items[2..]);
        return Ok(list(out));
    }
    let first = bindings[0].clone();
    let mut inner = vec![sym("let*"), list(bindings[1..].to_vec())];
    inner.extend_from_slice(&items[2..]);
    Ok(list(vec![sym("let"), list(vec![first]), list(inner)]))
}

fn expand_letrec(items: &[Sexp]) -> Result<Sexp, VmError> {
    if items.len() < 3 {
        return Err(err("letrec: needs bindings and a body"));
    }
    let (names, inits) = parse_bindings(&items[1], "letrec")?;
    let mut body = vec![sym("lambda"), list(names.clone())];
    for (name, init) in names.iter().zip(&inits) {
        body.push(list(vec![sym("set!"), name.clone(), init.clone()]));
    }
    body.extend_from_slice(&items[2..]);
    let mut call = vec![list(body)];
    call.extend(names.iter().map(|_| Sexp::Bool(false)));
    Ok(list(call))
}

fn expand_cond(items: &[Sexp], counter: &mut u32) -> Result<Sexp, VmError> {
    let clauses = &items[1..];
    if clauses.is_empty() {
        return Err(err("cond: no clauses"));
    }
    let clause = clauses[0]
        .as_list()
        .ok_or_else(|| err("cond: bad clause"))?;
    if clause.is_empty() {
        return Err(err("cond: empty clause"));
    }
    let rest = if clauses.len() > 1 {
        let mut r = vec![sym("cond")];
        r.extend_from_slice(&clauses[1..]);
        Some(list(r))
    } else {
        None
    };
    if clause[0].as_sym() == Some("else") {
        if rest.is_some() {
            return Err(err("cond: else clause must be last"));
        }
        let mut body = vec![sym("begin")];
        body.extend_from_slice(&clause[1..]);
        return Ok(list(body));
    }
    if clause.len() == 1 {
        // (cond (c) rest...) -> (or c (cond rest...))
        let mut or_form = vec![sym("or"), clause[0].clone()];
        if let Some(r) = rest {
            or_form.push(r);
        }
        return expand_or(&or_form.clone(), counter);
    }
    let mut body = vec![sym("begin")];
    body.extend_from_slice(&clause[1..]);
    let mut form = vec![sym("if"), clause[0].clone(), list(body)];
    if let Some(r) = rest {
        form.push(r);
    }
    Ok(list(form))
}

fn expand_and(items: &[Sexp]) -> Result<Sexp, VmError> {
    match &items[1..] {
        [] => Ok(Sexp::Bool(true)),
        [e] => Ok(e.clone()),
        [e, rest @ ..] => {
            let mut inner = vec![sym("and")];
            inner.extend_from_slice(rest);
            Ok(list(vec![
                sym("if"),
                e.clone(),
                list(inner),
                Sexp::Bool(false),
            ]))
        }
    }
}

fn expand_or(items: &[Sexp], counter: &mut u32) -> Result<Sexp, VmError> {
    match &items[1..] {
        [] => Ok(Sexp::Bool(false)),
        [e] => Ok(e.clone()),
        [e, rest @ ..] => {
            let tmp = gensym(counter);
            let mut inner = vec![sym("or")];
            inner.extend_from_slice(rest);
            let binding = list(vec![tmp.clone(), e.clone()]);
            Ok(list(vec![
                sym("let"),
                list(vec![binding]),
                list(vec![sym("if"), tmp.clone(), tmp, list(inner)]),
            ]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read;

    fn exp(src: &str) -> String {
        let form = read(src).unwrap().remove(0);
        let items = form.as_list().unwrap().to_vec();
        let mut counter = 0;
        expand_one(&items, &mut counter).unwrap().to_string()
    }

    #[test]
    fn let_becomes_application() {
        assert_eq!(
            exp("(let ((x 1) (y 2)) (+ x y))"),
            "((lambda (x y) (+ x y)) 1 2)"
        );
    }

    #[test]
    fn named_let_becomes_letrec() {
        assert_eq!(
            exp("(let loop ((i 0)) (loop (+ i 1)))"),
            "((letrec ((loop (lambda (i) (loop (+ i 1))))) loop) 0)"
        );
    }

    #[test]
    fn letrec_assignment_converts() {
        assert_eq!(
            exp("(letrec ((f (lambda (x) (f x)))) (f 1))"),
            "((lambda (f) (set! f (lambda (x) (f x))) (f 1)) #f)"
        );
    }

    #[test]
    fn let_star_nests() {
        assert_eq!(
            exp("(let* ((a 1) (b a)) b)"),
            "(let ((a 1)) (let* ((b a)) b))"
        );
    }

    #[test]
    fn cond_chains_ifs() {
        assert_eq!(
            exp("(cond (a 1) (else 2))"),
            "(if a (begin 1) (cond (else 2)))"
        );
        assert_eq!(exp("(cond (else 2 3))"), "(begin 2 3)");
    }

    #[test]
    fn and_or() {
        assert_eq!(exp("(and a b)"), "(if a (and b) #f)");
        assert_eq!(exp("(and)"), "#t");
        assert_eq!(exp("(or)"), "#f");
        let o = exp("(or a b)");
        assert!(o.starts_with("(let ((\u{1}g0 a))"), "{o}");
    }

    #[test]
    fn when_unless() {
        assert_eq!(exp("(when c 1 2)"), "(if c (begin 1 2))");
        assert_eq!(exp("(unless c 1)"), "(if (not c) (begin 1))");
    }

    #[test]
    fn malformed_forms_error() {
        let bad = [
            "(let (x) 1)",
            "(let)",
            "(cond)",
            "(letrec ((1 2)) 3)",
            "(when c)",
        ];
        for src in bad {
            let form = read(src).unwrap().remove(0);
            let items = form.as_list().unwrap().to_vec();
            let mut c = 0;
            assert!(expand_one(&items, &mut c).is_err(), "{src}");
        }
    }
}
