//! A small Scheme system: the paper's T-system analog.
//!
//! The paper's five test programs run in Yale T, "one of the best Scheme
//! compilers currently available", on a MIPS R3000, under an
//! instruction-level emulator that produces data-reference traces. This
//! crate plays all three roles at once:
//!
//! * [`read`] — an s-expression reader.
//! * [`Compiler`] — a bytecode compiler with flat (orbit-style) closures:
//!   free variables are copied into the closure at creation; assigned
//!   variables are boxed into cells (assignment conversion); binding forms
//!   expand into lambda applications; calls in tail position reuse frames.
//! * [`Machine`] — the virtual machine. Every load and store the simulated
//!   program performs — stack pushes and pops, global accesses, heap reads
//!   and writes, allocation initializations — is emitted into a
//!   [`TraceSink`](cachegc_trace::TraceSink), and every operation charges a
//!   calibrated number of abstract machine instructions, so the overhead
//!   formulas of §5–§6 have their `I_prog`, `I_gc`, and `ΔI_prog`.
//!
//! Following T, hash tables hash on object *addresses*; after a collection
//! moves objects, each table is rehashed on its next use, and that induced
//! work is charged separately (the paper's `ΔI_prog`, §6).
//!
//! # Example
//!
//! ```
//! use cachegc_gc::NoCollector;
//! use cachegc_trace::NullSink;
//! use cachegc_vm::Machine;
//!
//! let mut m = Machine::new(NoCollector::new(), NullSink);
//! let v = m.run_program("(define (square x) (* x x)) (square 12)").unwrap();
//! assert_eq!(v.as_fixnum(), 144);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytecode;
mod compiler;
mod error;
mod expand;
mod machine;
mod prims;
mod printer;
mod reader;
mod sexp;

pub use bytecode::{CodeObject, Insn, PrimOp};
pub use compiler::Compiler;
pub use error::VmError;
pub use machine::{Machine, RunStats};
pub use reader::read;
pub use sexp::Sexp;
