//! The virtual machine.

use std::collections::HashMap;

use cachegc_gc::{Collector, GcStats, Roots};
use cachegc_heap::{AllocMode, Heap, HeapConfig, ObjKind, Value};
use cachegc_telemetry::{probe, Counter};
use cachegc_trace::{
    Context, Counters, InstrClass, TraceSink, DYNAMIC_BASE, STACK_BASE, STATIC_BASE,
};

use crate::bytecode::{CodeObject, Insn, PrimOp};
use crate::compiler::{Compiler, UNSPEC_MARKER};
use crate::error::VmError;
use crate::printer;
use crate::reader::read;
use crate::sexp::Sexp;

const M: Context = Context::Mutator;
/// Global-vector capacity in slots.
const GLOBAL_CAPACITY: u32 = 4096;
/// Leave headroom below the dynamic area for overflow detection.
const STACK_LIMIT: u32 = DYNAMIC_BASE - 1024;
/// Saved-fp sentinel marking the bottommost frame.
const HALT_SENTINEL: i32 = -1;

/// Statistics from a program run, the inputs to the paper's overhead
/// formulas alongside the cache simulation's miss counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunStats {
    /// Instruction counts: `I_prog`, `I_gc`, `ΔI_prog`.
    pub instructions: Counters,
    /// Total dynamic bytes allocated (the §3 table's "Alloc" column).
    pub allocated_bytes: u64,
    /// Collector statistics.
    pub gc: GcStats,
}

/// The Scheme virtual machine, generic over a garbage [`Collector`] and a
/// [`TraceSink`] that receives every data reference the simulated program
/// makes.
pub struct Machine<C, S> {
    pub(crate) heap: Heap,
    pub(crate) gc: C,
    pub(crate) sink: S,
    pub(crate) counters: Counters,
    pub(crate) compiler: Compiler,
    consts: Vec<Value>,
    symbols: HashMap<String, Value>,
    globals: Value,
    pub(crate) output: String,
    // Machine registers (registers are not memory, so access is untraced).
    pub(crate) acc: Value,
    clos: Value,
    pub(crate) sp: u32,
    fp: u32,
    code: usize,
    pc: usize,
    installed: bool,
}

impl<C: Collector, S: TraceSink> Machine<C, S> {
    /// Boot a machine: allocate the runtime's static structures (the global
    /// vector — the paper's "small vector internal to the T runtime" — and
    /// primitive closures) and load the Scheme prelude into the static area.
    pub fn new(gc: C, sink: S) -> Self {
        let mut m = Machine {
            heap: Heap::new(HeapConfig::unbounded()),
            gc,
            sink,
            counters: Counters::new(),
            compiler: Compiler::new(),
            consts: Vec::new(),
            symbols: HashMap::new(),
            globals: Value::unspecified(),
            output: String::new(),
            acc: Value::unspecified(),
            clos: Value::unspecified(),
            sp: STACK_BASE,
            fp: STACK_BASE,
            code: 0,
            pc: 0,
            installed: false,
        };
        m.heap.set_mode(AllocMode::Static);
        m.globals = m
            .heap
            .alloc_vector(GLOBAL_CAPACITY, Value::undefined(), M, &mut m.sink)
            .expect("static area cannot be full at boot");
        m.bind_prims();
        let prelude = read(PRELUDE).expect("prelude reads");
        let main = m
            .compiler
            .compile_program(&prelude)
            .expect("prelude compiles");
        m.realize_consts();
        m.exec(main as usize).expect("prelude runs");
        m
    }

    fn bind_prims(&mut self) {
        for &op in PrimOp::all() {
            let arity = op.arity();
            let mut code = Vec::new();
            for i in 0..arity {
                code.push(Insn::LocalGet(i));
                code.push(Insn::Push);
            }
            code.push(Insn::Prim(op, arity));
            code.push(Insn::Return);
            let idx = self.compiler.codes.len() as u32;
            self.compiler.codes.push(CodeObject {
                name: format!("%{}", op.name()),
                arity,
                code,
            });
            let closure = self
                .heap
                .alloc(
                    ObjKind::Closure,
                    &[Value::fixnum(idx as i32)],
                    M,
                    &mut self.sink,
                )
                .expect("static closure");
            let slot = self.compiler.global_slot(op.name());
            let addr = self.globals.addr() + 4 + 4 * slot;
            self.heap.store(addr, closure, M, &mut self.sink);
        }
    }

    /// Compile and run a program. Constants and symbols are allocated in
    /// the static area at load time; execution allocates dynamically.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]: read, compile, or runtime failure.
    pub fn run_program(&mut self, src: &str) -> Result<Value, VmError> {
        let forms = read(src)?;
        let prev = self.heap.mode();
        self.heap.set_mode(AllocMode::Static);
        let main = self.compiler.compile_program(&forms)?;
        self.realize_consts();
        self.heap.set_mode(prev);
        assert!(
            self.compiler.global_count() <= GLOBAL_CAPACITY,
            "too many globals; raise GLOBAL_CAPACITY"
        );
        if !self.installed {
            self.gc.install(&mut self.heap);
            self.heap.set_mode(AllocMode::Dynamic);
            self.installed = true;
        }
        self.exec(main as usize)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Everything the program printed with `display`/`newline`.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Instruction counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The collector.
    pub fn collector(&self) -> &C {
        &self.gc
    }

    /// The trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the trace sink (e.g. to read statistics mid-run).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consume the machine, returning its sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Consume the machine, returning the collector and the sink.
    pub fn into_parts(self) -> (C, S) {
        (self.gc, self.sink)
    }

    /// Run statistics: instruction counts, allocation volume, GC activity.
    pub fn stats(&self) -> RunStats {
        RunStats {
            instructions: self.counters,
            allocated_bytes: self.heap.total_allocated(),
            gc: *self.gc.stats(),
        }
    }

    /// Render a value as `display` would (for tests and examples).
    pub fn display_value(&self, v: Value) -> String {
        printer::to_display_string(&self.heap, v)
    }

    // ------------------------------------------------------------------
    // Constants and symbols
    // ------------------------------------------------------------------

    fn realize_consts(&mut self) {
        debug_assert_eq!(self.heap.mode(), AllocMode::Static);
        while self.consts.len() < self.compiler.consts.len() {
            let sexp = self.compiler.consts[self.consts.len()].clone();
            let v = self.build_const(&sexp);
            self.consts.push(v);
        }
    }

    fn build_const(&mut self, s: &Sexp) -> Value {
        match s {
            Sexp::Int(n) => {
                if let Ok(n32) = i32::try_from(*n) {
                    if (-(1 << 29)..1 << 29).contains(&n32) {
                        return Value::fixnum(n32);
                    }
                }
                self.heap
                    .alloc_flonum(*n as f64, M, &mut self.sink)
                    .expect("static")
            }
            Sexp::Float(x) => self
                .heap
                .alloc_flonum(*x, M, &mut self.sink)
                .expect("static"),
            Sexp::Str(st) => self
                .heap
                .alloc_string(st, M, &mut self.sink)
                .expect("static"),
            Sexp::Char(c) => Value::char(*c),
            Sexp::Bool(b) => Value::bool(*b),
            Sexp::Sym(name) if name == UNSPEC_MARKER => Value::unspecified(),
            Sexp::Sym(name) => self.intern(&name.clone()),
            Sexp::List(items) => {
                let mut tail = Value::nil();
                for item in items.iter().rev() {
                    let head = self.build_const(item);
                    tail = self
                        .heap
                        .alloc(ObjKind::Pair, &[head, tail], M, &mut self.sink)
                        .expect("static");
                }
                tail
            }
        }
    }

    /// Intern a symbol in the static area.
    pub fn intern(&mut self, name: &str) -> Value {
        if let Some(&v) = self.symbols.get(name) {
            return v;
        }
        let prev = self.heap.mode();
        self.heap.set_mode(AllocMode::Static);
        let str_v = self
            .heap
            .alloc_string(name, M, &mut self.sink)
            .expect("static");
        let hash = name
            .bytes()
            .fold(2166136261u32, |h, b| (h ^ b as u32).wrapping_mul(16777619));
        let sym = self
            .heap
            .alloc(
                ObjKind::Symbol,
                &[str_v, Value::fixnum((hash & 0x0fff_ffff) as i32)],
                M,
                &mut self.sink,
            )
            .expect("static");
        self.heap.set_mode(prev);
        self.symbols.insert(name.to_string(), sym);
        sym
    }

    // ------------------------------------------------------------------
    // Traced memory helpers
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn load(&mut self, addr: u32) -> Value {
        self.heap.load(addr, M, &mut self.sink)
    }

    /// Store without a write barrier (stack slots).
    #[inline]
    fn store_plain(&mut self, addr: u32, v: Value) {
        self.heap.store(addr, v, M, &mut self.sink);
    }

    /// Store into a heap object: traced write plus the generational write
    /// barrier. Barrier instructions are program work induced by the
    /// collection strategy, so they are charged to `ΔI_prog`.
    #[inline]
    pub(crate) fn heap_store(&mut self, addr: u32, v: Value) {
        self.heap.store(addr, v, M, &mut self.sink);
        self.gc.note_store(addr, v);
        let cost = self.gc.barrier_cost();
        if cost > 0 {
            self.counters.charge(InstrClass::GcInduced, cost);
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, v: Value) -> Result<(), VmError> {
        if self.sp >= STACK_LIMIT {
            return Err(VmError::StackOverflow);
        }
        self.heap.store(self.sp, v, M, &mut self.sink);
        self.sp += 4;
        Ok(())
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Value {
        debug_assert!(self.sp > STACK_BASE);
        self.sp -= 4;
        self.heap.load(self.sp, M, &mut self.sink)
    }

    /// Untraced stack peek, for pre-computing allocation sizes.
    #[inline]
    pub(crate) fn peek_arg(&self, nargs: u32, which: u32) -> Value {
        Value::from_bits(self.heap.peek(self.sp - 4 * (nargs - which)))
    }

    // ------------------------------------------------------------------
    // Allocation and collection
    // ------------------------------------------------------------------

    /// Make sure at least `bytes` are allocatable, collecting if needed.
    /// All live values must be reachable from the roots (stack, static
    /// area, `acc`, `clos`) when this is called.
    pub(crate) fn ensure_free(&mut self, bytes: u32) -> Result<(), VmError> {
        if self.heap.mode() == AllocMode::Static {
            return Ok(());
        }
        if self.gc.prepare_alloc(&mut self.heap, bytes, &mut self.sink) {
            return Ok(());
        }
        probe!(Counter::VmGcTriggers);
        self.collect_garbage();
        if !self.gc.prepare_alloc(&mut self.heap, bytes, &mut self.sink) {
            return Err(VmError::OutOfMemory(format!(
                "need {bytes} bytes, {} free after collection",
                self.heap.dynamic_free()
            )));
        }
        Ok(())
    }

    /// Run a garbage collection now, with the VM's full root set.
    pub fn collect_garbage(&mut self) {
        let mut regs = [self.acc, self.clos];
        let mut roots = Roots {
            flat_ranges: vec![(STACK_BASE, self.sp)],
            object_ranges: vec![(STATIC_BASE, self.heap.static_top())],
            registers: &mut regs,
        };
        self.gc.collect(
            &mut self.heap,
            &mut roots,
            &mut self.counters,
            &mut self.sink,
        );
        self.acc = regs[0];
        self.clos = regs[1];
    }

    /// Allocate, assuming [`Machine::ensure_free`] was called.
    pub(crate) fn alloc(&mut self, kind: ObjKind, payload: &[Value]) -> Result<Value, VmError> {
        probe!(Counter::VmAllocs);
        self.heap
            .alloc(kind, payload, M, &mut self.sink)
            .map_err(|e| VmError::OutOfMemory(e.to_string()))
    }

    pub(crate) fn alloc_flonum(&mut self, x: f64) -> Result<Value, VmError> {
        probe!(Counter::VmAllocs);
        self.heap
            .alloc_flonum(x, M, &mut self.sink)
            .map_err(|e| VmError::OutOfMemory(e.to_string()))
    }

    pub(crate) fn alloc_vector_vm(&mut self, len: u32, fill: Value) -> Result<Value, VmError> {
        probe!(Counter::VmAllocs);
        self.heap
            .alloc_vector(len, fill, M, &mut self.sink)
            .map_err(|e| VmError::OutOfMemory(e.to_string()))
    }

    pub(crate) fn runtime_error(&self, msg: impl Into<String>) -> VmError {
        VmError::Runtime(msg.into())
    }

    pub(crate) fn charge(&mut self, class: InstrClass, n: u64) {
        self.counters.charge(class, n);
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    fn exec(&mut self, main: usize) -> Result<Value, VmError> {
        self.sp = STACK_BASE;
        self.push(Value::unspecified())?; // operator slot of the root frame
        self.fp = self.sp;
        self.push(Value::fixnum(HALT_SENTINEL))?; // saved fp
        self.push(Value::fixnum(HALT_SENTINEL))?; // saved code
        self.push(Value::fixnum(0))?; // saved pc
        self.push(Value::unspecified())?; // saved closure
        self.code = main;
        self.pc = 0;
        self.clos = Value::unspecified();

        loop {
            let insn = self.compiler.codes[self.code].code[self.pc];
            self.pc += 1;
            self.counters.charge(InstrClass::Program, insn.weight());
            match insn {
                Insn::Const(i) => self.acc = self.consts[i as usize],
                Insn::LocalGet(i) => self.acc = self.load(self.fp + 4 * i),
                Insn::LocalSet(i) => {
                    let (addr, v) = (self.fp + 4 * i, self.acc);
                    self.store_plain(addr, v);
                }
                Insn::CellGet(i) => {
                    let cell = self.load(self.fp + 4 * i);
                    self.acc = self.load(cell.addr() + 4);
                }
                Insn::CellSet(i) => {
                    let cell = self.load(self.fp + 4 * i);
                    let v = self.acc;
                    self.heap_store(cell.addr() + 4, v);
                }
                Insn::ClosureGet(i) => {
                    let addr = self.clos.addr() + 8 + 4 * i;
                    self.acc = self.load(addr);
                }
                Insn::ClosureCellGet(i) => {
                    let addr = self.clos.addr() + 8 + 4 * i;
                    let cell = self.load(addr);
                    self.acc = self.load(cell.addr() + 4);
                }
                Insn::ClosureCellSet(i) => {
                    let addr = self.clos.addr() + 8 + 4 * i;
                    let cell = self.load(addr);
                    let v = self.acc;
                    self.heap_store(cell.addr() + 4, v);
                }
                Insn::GlobalGet(i) => {
                    let v = self.load(self.globals.addr() + 4 + 4 * i);
                    if v.is_undefined() {
                        return Err(self.runtime_error(format!(
                            "unbound global: {}",
                            self.compiler.global_name(i)
                        )));
                    }
                    self.acc = v;
                }
                Insn::GlobalSet(i) => {
                    let addr = self.globals.addr() + 4 + 4 * i;
                    let v = self.acc;
                    self.heap_store(addr, v);
                }
                Insn::Push => {
                    let v = self.acc;
                    self.push(v)?;
                }
                Insn::MakeCell => {
                    self.ensure_free(8)?;
                    let v = self.acc;
                    self.acc = self.alloc(ObjKind::Cell, &[v])?;
                }
                Insn::MakeClosure { code, nfree } => {
                    self.ensure_free(8 + 4 * nfree)?;
                    let mut payload = Vec::with_capacity(1 + nfree as usize);
                    payload.push(Value::fixnum(code as i32));
                    let base = self.sp - 4 * nfree;
                    for k in 0..nfree {
                        let v = self.load(base + 4 * k);
                        payload.push(v);
                    }
                    self.sp = base;
                    self.acc = self.alloc(ObjKind::Closure, &payload)?;
                }
                Insn::Call(n) => self.do_call(n)?,
                Insn::TailCall(n) => self.do_tail_call(n)?,
                Insn::Return => {
                    if self.do_return()? {
                        return Ok(self.acc);
                    }
                }
                Insn::Jump(t) => self.pc = t as usize,
                Insn::JumpIfFalse(t) => {
                    if !self.acc.is_truthy() {
                        self.pc = t as usize;
                    }
                }
                Insn::Prim(op, n) => self.apply_prim(op, n)?,
                Insn::Halt => return Ok(self.acc),
            }
        }
    }

    fn check_closure(&mut self, callee: Value, n: u32) -> Result<usize, VmError> {
        if !callee.is_ptr() || self.heap.header(callee).kind() != ObjKind::Closure {
            return Err(self.runtime_error(format!(
                "call of non-procedure: {}",
                printer::to_display_string(&self.heap, callee)
            )));
        }
        let code_idx = self.load(callee.addr() + 4).as_fixnum() as usize;
        let arity = self.compiler.codes[code_idx].arity;
        if arity != n {
            return Err(self.runtime_error(format!(
                "{} expects {arity} arguments, got {n}",
                self.compiler.codes[code_idx].name
            )));
        }
        Ok(code_idx)
    }

    fn do_call(&mut self, n: u32) -> Result<(), VmError> {
        let callee = self.load(self.sp - 4 * (n + 1));
        let code_idx = self.check_closure(callee, n)?;
        let new_fp = self.sp - 4 * n;
        self.push(Value::fixnum(self.fp as i32))?;
        self.push(Value::fixnum(self.code as i32))?;
        self.push(Value::fixnum(self.pc as i32))?;
        self.push(self.clos)?;
        self.fp = new_fp;
        self.clos = callee;
        self.code = code_idx;
        self.pc = 0;
        Ok(())
    }

    fn do_tail_call(&mut self, n: u32) -> Result<(), VmError> {
        let cur_arity = self.compiler.codes[self.code].arity;
        let ctrl = self.fp + 4 * cur_arity;
        let s_fp = self.load(ctrl);
        let s_code = self.load(ctrl + 4);
        let s_pc = self.load(ctrl + 8);
        let s_clos = self.load(ctrl + 12);
        // Slide the new operator and arguments down over the current frame.
        let src = self.sp - 4 * (n + 1);
        let mut callee = Value::unspecified();
        for k in 0..=n {
            let v = self.load(src + 4 * k);
            if k == 0 {
                callee = v;
            }
            self.store_plain(self.fp - 4 + 4 * k, v);
        }
        let code_idx = self.check_closure(callee, n)?;
        let ctrl2 = self.fp + 4 * n;
        self.store_plain(ctrl2, s_fp);
        self.store_plain(ctrl2 + 4, s_code);
        self.store_plain(ctrl2 + 8, s_pc);
        self.store_plain(ctrl2 + 12, s_clos);
        self.sp = ctrl2 + 16;
        self.clos = callee;
        self.code = code_idx;
        self.pc = 0;
        Ok(())
    }

    /// Returns true when the bottom frame returns (program finished).
    fn do_return(&mut self) -> Result<bool, VmError> {
        let arity = self.compiler.codes[self.code].arity;
        let base = self.fp + 4 * arity;
        let s_fp = self.load(base);
        if s_fp.as_fixnum() == HALT_SENTINEL {
            return Ok(true);
        }
        let s_code = self.load(base + 4);
        let s_pc = self.load(base + 8);
        let s_clos = self.load(base + 12);
        self.sp = self.fp - 4;
        self.fp = s_fp.as_fixnum() as u32;
        self.code = s_code.as_fixnum() as usize;
        self.pc = s_pc.as_fixnum() as usize;
        self.clos = s_clos;
        Ok(false)
    }
}

/// The Scheme prelude, loaded into the static area at boot — the analog of
/// the T system's library: its closures are static blocks (§7).
const PRELUDE: &str = r#"
(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caddr p) (car (cddr p)))
(define (cdddr p) (cdr (cddr p)))
(define (cadddr p) (car (cdddr p)))
(define (length l)
  (let loop ((l l) (n 0))
    (if (null? l) n (loop (cdr l) (+ n 1)))))
(define (append a b)
  (if (null? a) b (cons (car a) (append (cdr a) b))))
(define (reverse l)
  (let loop ((l l) (acc '()))
    (if (null? l) acc (loop (cdr l) (cons (car l) acc)))))
(define (map f l)
  (if (null? l) '() (cons (f (car l)) (map f (cdr l)))))
(define (map2 f a b)
  (if (null? a) '() (cons (f (car a) (car b)) (map2 f (cdr a) (cdr b)))))
(define (for-each f l)
  (if (null? l) #f (begin (f (car l)) (for-each f (cdr l)))))
(define (assq k l)
  (cond ((null? l) #f)
        ((eq? (caar l) k) (car l))
        (else (assq k (cdr l)))))
(define (assoc k l)
  (cond ((null? l) #f)
        ((equal? (caar l) k) (car l))
        (else (assoc k (cdr l)))))
(define (memq x l)
  (cond ((null? l) #f)
        ((eq? (car l) x) l)
        (else (memq x (cdr l)))))
(define (member x l)
  (cond ((null? l) #f)
        ((equal? (car l) x) l)
        (else (member x (cdr l)))))
(define (list-tail l k)
  (if (zero? k) l (list-tail (cdr l) (- k 1))))
(define (list-ref l k) (car (list-tail l k)))
(define (filter p l)
  (cond ((null? l) '())
        ((p (car l)) (cons (car l) (filter p (cdr l))))
        (else (filter p (cdr l)))))
(define (fold-left f acc l)
  (if (null? l) acc (fold-left f (f acc (car l)) (cdr l))))
(define (fold-right f init l)
  (if (null? l) init (f (car l) (fold-right f init (cdr l)))))
(define (vector-fill! v x)
  (let loop ((i 0))
    (if (< i (vector-length v))
        (begin (vector-set! v i x) (loop (+ i 1)))
        v)))
(define (list->vector l)
  (let ((v (make-vector (length l) 0)))
    (let loop ((l l) (i 0))
      (if (null? l) v
          (begin (vector-set! v i (car l)) (loop (cdr l) (+ i 1)))))))
(define (vector->list v)
  (let loop ((i (- (vector-length v) 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons (vector-ref v i) acc)))))
(define (even? n) (zero? (remainder n 2)))
(define (odd? n) (not (even? n)))
(define (negative? n) (< n 0))
(define (positive? n) (> n 0))
(define (expt b e)
  (let loop ((e e) (acc 1))
    (if (zero? e) acc (loop (- e 1) (* acc b)))))
(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))
"#;
