//! Primitive operations.
//!
//! Argument convention: arguments are pushed left to right, so pops return
//! them right to left. Primitives that allocate call
//! [`Machine::ensure_free`] *before* popping, so a collection triggered by
//! the reservation still sees every live value rooted on the simulated
//! stack.

use cachegc_gc::Collector;
use cachegc_heap::{Header, ObjKind, Value};
use cachegc_trace::{Context, InstrClass, TraceSink};

use crate::bytecode::PrimOp;
use crate::error::VmError;
use crate::machine::Machine;
use crate::printer;

const M: Context = Context::Mutator;

/// Numbers are fixnums or flonums.
#[derive(Debug, Clone, Copy)]
enum Num {
    Fix(i64),
    Flo(f64),
}

impl Num {
    fn as_f64(self) -> f64 {
        match self {
            Num::Fix(n) => n as f64,
            Num::Flo(x) => x,
        }
    }
}

fn eq_hash(v: Value) -> u32 {
    (v.bits().wrapping_mul(2654435761)) >> 4
}

fn fits_fixnum(n: i64) -> bool {
    (-(1i64 << 29)..1i64 << 29).contains(&n)
}

impl<C: Collector, S: TraceSink> Machine<C, S> {
    fn kind_of(&self, v: Value) -> Option<ObjKind> {
        if v.is_ptr() {
            Some(self.heap.header(v).kind())
        } else {
            None
        }
    }

    fn expect_kind(&self, v: Value, kind: ObjKind, who: &str) -> Result<(), VmError> {
        if self.kind_of(v) == Some(kind) {
            Ok(())
        } else {
            Err(self.runtime_error(format!(
                "{who}: expected {kind:?}, got {}",
                printer::to_display_string(&self.heap, v)
            )))
        }
    }

    /// Traced read of an object's header word (e.g. a vector bounds check).
    fn traced_header(&mut self, v: Value) -> Header {
        Header::from_bits(self.heap.load_raw(v.addr(), M, &mut self.sink))
    }

    fn read_num(&mut self, v: Value, who: &str) -> Result<Num, VmError> {
        if v.is_fixnum() {
            return Ok(Num::Fix(v.as_fixnum() as i64));
        }
        if self.kind_of(v) == Some(ObjKind::Flonum) {
            let x = self.heap.load_flonum(v, M, &mut self.sink);
            return Ok(Num::Flo(x));
        }
        Err(self.runtime_error(format!(
            "{who}: not a number: {}",
            printer::to_display_string(&self.heap, v)
        )))
    }

    /// Represent a numeric result, boxing to a flonum when needed.
    /// Callers must have reserved 12 bytes.
    fn num_value(&mut self, n: Num) -> Result<Value, VmError> {
        match n {
            Num::Fix(i) if fits_fixnum(i) => Ok(Value::fixnum(i as i32)),
            Num::Fix(i) => self.alloc_flonum(i as f64),
            Num::Flo(x) => self.alloc_flonum(x),
        }
    }

    fn pop2(&mut self) -> (Value, Value) {
        let b = self.pop();
        let a = self.pop();
        (a, b)
    }

    fn arith(&mut self, op: PrimOp) -> Result<(), VmError> {
        self.ensure_free(12)?;
        let (a, b) = self.pop2();
        let name = op.name();
        let x = self.read_num(a, name)?;
        let y = self.read_num(b, name)?;
        let r = match (op, x, y) {
            (PrimOp::Add, Num::Fix(p), Num::Fix(q)) => Num::Fix(p + q),
            (PrimOp::Sub, Num::Fix(p), Num::Fix(q)) => Num::Fix(p - q),
            (PrimOp::Mul, Num::Fix(p), Num::Fix(q)) => Num::Fix(p * q),
            (PrimOp::Add, p, q) => Num::Flo(p.as_f64() + q.as_f64()),
            (PrimOp::Sub, p, q) => Num::Flo(p.as_f64() - q.as_f64()),
            (PrimOp::Mul, p, q) => Num::Flo(p.as_f64() * q.as_f64()),
            (PrimOp::Div, Num::Fix(p), Num::Fix(q)) => {
                if q == 0 {
                    return Err(self.runtime_error("/: division by zero"));
                }
                if p % q == 0 {
                    Num::Fix(p / q)
                } else {
                    Num::Flo(p as f64 / q as f64)
                }
            }
            (PrimOp::Div, p, q) => Num::Flo(p.as_f64() / q.as_f64()),
            _ => unreachable!("arith called with {op}"),
        };
        self.acc = self.num_value(r)?;
        Ok(())
    }

    fn int_div(&mut self, op: PrimOp) -> Result<(), VmError> {
        let (a, b) = self.pop2();
        let name = op.name();
        if !a.is_fixnum() || !b.is_fixnum() {
            return Err(self.runtime_error(format!("{name}: needs fixnums")));
        }
        let (p, q) = (a.as_fixnum(), b.as_fixnum());
        if q == 0 {
            return Err(self.runtime_error(format!("{name}: division by zero")));
        }
        let r = match op {
            PrimOp::Quotient => p / q,
            PrimOp::Remainder => p % q,
            PrimOp::Modulo => ((p % q) + q) % q,
            _ => unreachable!(),
        };
        self.acc = Value::fixnum(r);
        Ok(())
    }

    fn compare(&mut self, op: PrimOp) -> Result<(), VmError> {
        let (a, b) = self.pop2();
        let name = op.name();
        let x = self.read_num(a, name)?;
        let y = self.read_num(b, name)?;
        let r = match (x, y) {
            (Num::Fix(p), Num::Fix(q)) => match op {
                PrimOp::NumEq => p == q,
                PrimOp::Lt => p < q,
                PrimOp::Le => p <= q,
                PrimOp::Gt => p > q,
                PrimOp::Ge => p >= q,
                _ => unreachable!(),
            },
            (p, q) => {
                let (p, q) = (p.as_f64(), q.as_f64());
                match op {
                    PrimOp::NumEq => p == q,
                    PrimOp::Lt => p < q,
                    PrimOp::Le => p <= q,
                    PrimOp::Gt => p > q,
                    PrimOp::Ge => p >= q,
                    _ => unreachable!(),
                }
            }
        };
        self.acc = Value::bool(r);
        Ok(())
    }

    fn pair_field(&mut self, offset: u32, who: &str) -> Result<(), VmError> {
        let p = self.pop();
        self.expect_kind(p, ObjKind::Pair, who)?;
        self.acc = self.load(p.addr() + offset);
        Ok(())
    }

    fn pair_set(&mut self, offset: u32, who: &str) -> Result<(), VmError> {
        let (p, v) = self.pop2();
        self.expect_kind(p, ObjKind::Pair, who)?;
        self.heap_store(p.addr() + offset, v);
        self.acc = Value::unspecified();
        Ok(())
    }

    fn equal_rec(&mut self, a: Value, b: Value, fuel: &mut u32) -> Result<bool, VmError> {
        if *fuel == 0 {
            return Err(self.runtime_error("equal?: structure too deep"));
        }
        *fuel -= 1;
        self.charge(InstrClass::Program, 4);
        if a == b {
            return Ok(true);
        }
        match (self.kind_of(a), self.kind_of(b)) {
            (Some(ObjKind::Flonum), Some(ObjKind::Flonum)) => {
                let x = self.heap.load_flonum(a, M, &mut self.sink);
                let y = self.heap.load_flonum(b, M, &mut self.sink);
                Ok(x == y)
            }
            (Some(ObjKind::String), Some(ObjKind::String)) => {
                let x = self.heap.load_string(a, M, &mut self.sink);
                let y = self.heap.load_string(b, M, &mut self.sink);
                self.charge(InstrClass::Program, x.len() as u64);
                Ok(x == y)
            }
            (Some(ObjKind::Pair), Some(ObjKind::Pair)) => {
                let ca = self.load(a.addr() + 4);
                let cb = self.load(b.addr() + 4);
                if !self.equal_rec(ca, cb, fuel)? {
                    return Ok(false);
                }
                let da = self.load(a.addr() + 8);
                let db = self.load(b.addr() + 8);
                self.equal_rec(da, db, fuel)
            }
            (Some(ObjKind::Vector), Some(ObjKind::Vector)) => {
                let la = self.traced_header(a).len();
                let lb = self.traced_header(b).len();
                if la != lb {
                    return Ok(false);
                }
                for i in 0..la {
                    let ea = self.load(a.addr() + 4 + 4 * i);
                    let eb = self.load(b.addr() + 4 + 4 * i);
                    if !self.equal_rec(ea, eb, fuel)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Apply primitive `op` to `n` pushed arguments; the result is left in
    /// the accumulator.
    pub(crate) fn apply_prim(&mut self, op: PrimOp, n: u32) -> Result<(), VmError> {
        use PrimOp::*;
        match op {
            Cons => {
                self.ensure_free(12)?;
                let (a, d) = self.pop2();
                self.acc = self.alloc(ObjKind::Pair, &[a, d])?;
            }
            Car => self.pair_field(4, "car")?,
            Cdr => self.pair_field(8, "cdr")?,
            SetCar => self.pair_set(4, "set-car!")?,
            SetCdr => self.pair_set(8, "set-cdr!")?,
            PairP => {
                let v = self.pop();
                self.acc = Value::bool(self.kind_of(v) == Some(ObjKind::Pair));
            }
            NullP => {
                let v = self.pop();
                self.acc = Value::bool(v.is_nil());
            }
            EqP => {
                let (a, b) = self.pop2();
                self.acc = Value::bool(a == b);
            }
            EqvP => {
                let (a, b) = self.pop2();
                let eqv = a == b
                    || (self.kind_of(a) == Some(ObjKind::Flonum)
                        && self.kind_of(b) == Some(ObjKind::Flonum)
                        && {
                            let x = self.heap.load_flonum(a, M, &mut self.sink);
                            let y = self.heap.load_flonum(b, M, &mut self.sink);
                            x == y
                        });
                self.acc = Value::bool(eqv);
            }
            EqualP => {
                let (a, b) = self.pop2();
                let mut fuel = 1_000_000;
                let r = self.equal_rec(a, b, &mut fuel)?;
                self.acc = Value::bool(r);
            }
            Add | Sub | Mul | Div => self.arith(op)?,
            Quotient | Remainder | Modulo => self.int_div(op)?,
            NumEq | Lt | Le | Gt | Ge => self.compare(op)?,
            ZeroP => {
                let v = self.pop();
                let x = self.read_num(v, "zero?")?;
                self.acc = Value::bool(x.as_f64() == 0.0);
            }
            Not => {
                let v = self.pop();
                self.acc = Value::bool(!v.is_truthy());
            }
            Abs => {
                self.ensure_free(12)?;
                let v = self.pop();
                let x = self.read_num(v, "abs")?;
                let r = match x {
                    Num::Fix(i) => Num::Fix(i.abs()),
                    Num::Flo(f) => Num::Flo(f.abs()),
                };
                self.acc = self.num_value(r)?;
            }
            Min | Max => {
                let (a, b) = self.pop2();
                let x = self.read_num(a, op.name())?.as_f64();
                let y = self.read_num(b, op.name())?.as_f64();
                let take_a = if op == Min { x <= y } else { x >= y };
                self.acc = if take_a { a } else { b };
            }
            Sqrt => {
                self.ensure_free(12)?;
                let v = self.pop();
                let x = self.read_num(v, "sqrt")?.as_f64();
                self.acc = self.alloc_flonum(x.sqrt())?;
            }
            ExactToInexact => {
                self.ensure_free(12)?;
                let v = self.pop();
                let x = self.read_num(v, "exact->inexact")?.as_f64();
                self.acc = self.alloc_flonum(x)?;
            }
            InexactToExact => {
                let v = self.pop();
                match self.read_num(v, "inexact->exact")? {
                    Num::Fix(_) => self.acc = v,
                    Num::Flo(x) => {
                        let t = x.trunc();
                        if !((-(1i64 << 29) as f64)..(1i64 << 29) as f64).contains(&t) {
                            return Err(self.runtime_error("inexact->exact: out of fixnum range"));
                        }
                        self.acc = Value::fixnum(t as i32);
                    }
                }
            }
            Floor => {
                self.ensure_free(12)?;
                let v = self.pop();
                match self.read_num(v, "floor")? {
                    Num::Fix(_) => self.acc = v,
                    Num::Flo(x) => self.acc = self.alloc_flonum(x.floor())?,
                }
            }
            NumberP => {
                let v = self.pop();
                self.acc = Value::bool(v.is_fixnum() || self.kind_of(v) == Some(ObjKind::Flonum));
            }
            IntegerP => {
                let v = self.pop();
                let r = v.is_fixnum()
                    || (self.kind_of(v) == Some(ObjKind::Flonum) && {
                        let x = self.heap.load_flonum(v, M, &mut self.sink);
                        x.fract() == 0.0
                    });
                self.acc = Value::bool(r);
            }
            SymbolP => {
                let v = self.pop();
                self.acc = Value::bool(self.kind_of(v) == Some(ObjKind::Symbol));
            }
            StringP => {
                let v = self.pop();
                self.acc = Value::bool(self.kind_of(v) == Some(ObjKind::String));
            }
            VectorP => {
                let v = self.pop();
                self.acc = Value::bool(self.kind_of(v) == Some(ObjKind::Vector));
            }
            ProcedureP => {
                let v = self.pop();
                self.acc = Value::bool(self.kind_of(v) == Some(ObjKind::Closure));
            }
            BooleanP => {
                let v = self.pop();
                self.acc = Value::bool(v.is_bool());
            }
            List => {
                self.ensure_free(12 * n)?;
                let mut tail = Value::nil();
                for _ in 0..n {
                    let v = self.pop();
                    tail = self.alloc(ObjKind::Pair, &[v, tail])?;
                }
                self.acc = tail;
            }
            MakeVector => {
                let len_v = self.peek_arg(2, 0);
                if !len_v.is_fixnum() || len_v.as_fixnum() < 0 {
                    return Err(self.runtime_error("make-vector: bad length"));
                }
                let len = len_v.as_fixnum() as u32;
                self.ensure_free(4 + 4 * len)?;
                let (_, fill) = self.pop2();
                self.acc = self.alloc_vector_vm(len, fill)?;
            }
            VectorRef => {
                let (v, i) = self.pop2();
                self.expect_kind(v, ObjKind::Vector, "vector-ref")?;
                let len = self.traced_header(v).len();
                let idx = self.vector_index(i, len, "vector-ref")?;
                self.acc = self.load(v.addr() + 4 + 4 * idx);
            }
            VectorSet => {
                let val = self.pop();
                let (v, i) = self.pop2();
                self.expect_kind(v, ObjKind::Vector, "vector-set!")?;
                let len = self.traced_header(v).len();
                let idx = self.vector_index(i, len, "vector-set!")?;
                self.heap_store(v.addr() + 4 + 4 * idx, val);
                self.acc = Value::unspecified();
            }
            VectorLength => {
                let v = self.pop();
                self.expect_kind(v, ObjKind::Vector, "vector-length")?;
                let len = self.traced_header(v).len();
                self.acc = Value::fixnum(len as i32);
            }
            MakeTable => self.make_table()?,
            TableRef => self.table_ref()?,
            TableSet => self.table_set()?,
            TableCount => {
                let t = self.pop();
                self.expect_kind(t, ObjKind::Table, "table-count")?;
                self.acc = self.load(t.addr() + 8);
            }
            SymbolToString => {
                let v = self.pop();
                self.expect_kind(v, ObjKind::Symbol, "symbol->string")?;
                self.acc = self.load(v.addr() + 4);
            }
            StringLength => {
                let v = self.pop();
                self.expect_kind(v, ObjKind::String, "string-length")?;
                self.acc = self.load(v.addr() + 4);
            }
            Display => {
                let mut parts = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    parts.push(self.pop());
                }
                parts.reverse();
                for v in parts {
                    let s = printer::to_display_string(&self.heap, v);
                    self.charge(InstrClass::Program, s.len() as u64);
                    if self.output.len() < 4 << 20 {
                        self.output.push_str(&s);
                    }
                }
                self.acc = Value::unspecified();
            }
            Newline => {
                if self.output.len() < 4 << 20 {
                    self.output.push('\n');
                }
                self.acc = Value::unspecified();
            }
            Error => {
                let mut parts = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    parts.push(self.pop());
                }
                parts.reverse();
                let msg: Vec<String> = parts
                    .iter()
                    .map(|v| printer::to_display_string(&self.heap, *v))
                    .collect();
                return Err(self.runtime_error(msg.join(" ")));
            }
            GcEpoch => {
                self.acc = Value::fixnum((self.heap.gc_epoch() & 0x0fff_ffff) as i32);
            }
        }
        Ok(())
    }

    fn vector_index(&self, i: Value, len: u32, who: &str) -> Result<u32, VmError> {
        if !i.is_fixnum() || i.as_fixnum() < 0 || i.as_fixnum() as u32 >= len {
            return Err(self.runtime_error(format!(
                "{who}: index {} out of range [0, {len})",
                printer::to_display_string(&self.heap, i)
            )));
        }
        Ok(i.as_fixnum() as u32)
    }

    // ------------------------------------------------------------------
    // Hash tables (address-hashed, rehash after GC, as in T)
    // ------------------------------------------------------------------

    fn epoch_fixnum(&self) -> Value {
        Value::fixnum((self.heap.gc_epoch() & 0x0fff_ffff) as i32)
    }

    fn make_table(&mut self) -> Result<(), VmError> {
        const INITIAL_BUCKETS: u32 = 16;
        self.ensure_free(4 + 4 * INITIAL_BUCKETS + 16)?;
        let buckets = self.alloc_vector_vm(INITIAL_BUCKETS, Value::nil())?;
        let epoch = self.epoch_fixnum();
        self.acc = self.alloc(ObjKind::Table, &[buckets, Value::fixnum(0), epoch])?;
        Ok(())
    }

    /// If the table argument at stack position `which` (of `nargs`) has a
    /// stale GC epoch, rehash it: object addresses changed, so every
    /// address-derived hash is invalid. The induced work is the paper's
    /// `ΔI_prog` (§6).
    fn maybe_rehash(&mut self, nargs: u32, which: u32, who: &str) -> Result<(), VmError> {
        let slot = self.sp - 4 * (nargs - which);
        let table = Value::from_bits(self.heap.peek(slot));
        self.expect_kind(table, ObjKind::Table, who)?;
        let stored = self.load(table.addr() + 12);
        if stored == self.epoch_fixnum() {
            return Ok(());
        }
        self.rehash_table_slot(slot, InstrClass::GcInduced)
    }

    /// Rehash the table whose pointer lives in stack slot `slot` (kept
    /// there so a collection triggered by the reservation re-roots it).
    /// Work is charged to `charge_to`: `GcInduced` when a collection moved
    /// the keys, `Program` for ordinary load-factor growth.
    fn rehash_table_slot(&mut self, slot: u32, charge_to: InstrClass) -> Result<(), VmError> {
        let table = Value::from_bits(self.heap.peek(slot));
        let count = self.load(table.addr() + 8).as_fixnum() as u32;
        let buckets = self.load(table.addr() + 4);
        let nb = self.traced_header(buckets).len();
        let new_nb = if count > 2 * nb { (2 * nb).max(16) } else { nb };
        self.ensure_free(4 + 4 * new_nb + 12 * count + 64)?;
        // The reservation may have collected; reload through the stack.
        let table = Value::from_bits(self.heap.peek(slot));
        let buckets = self.load(table.addr() + 4);
        let nb = self.traced_header(buckets).len();
        // Gather entry pairs (reused in place; only chain links and the
        // buckets vector are reallocated). No collection can happen below.
        let mut entries = Vec::with_capacity(count as usize);
        for i in 0..nb {
            let mut chain = self.load(buckets.addr() + 4 + 4 * i);
            while chain.is_ptr() {
                entries.push(self.load(chain.addr() + 4));
                chain = self.load(chain.addr() + 8);
            }
        }
        let newb = self.alloc_vector_vm(new_nb, Value::nil())?;
        for entry in entries {
            let key = self.load(entry.addr() + 4);
            let idx = eq_hash(key) % new_nb;
            let head = self.load(newb.addr() + 4 + 4 * idx);
            let link = self.alloc(ObjKind::Pair, &[entry, head])?;
            self.heap_store(newb.addr() + 4 + 4 * idx, link);
        }
        self.heap_store(table.addr() + 4, newb);
        let epoch = self.epoch_fixnum();
        self.heap_store(table.addr() + 12, epoch);
        self.charge(charge_to, 40 + 25 * count as u64);
        Ok(())
    }

    fn table_ref(&mut self) -> Result<(), VmError> {
        self.maybe_rehash(3, 0, "table-ref")?;
        let default = self.pop();
        let (table, key) = self.pop2();
        let buckets = self.load(table.addr() + 4);
        let nb = self.traced_header(buckets).len();
        let idx = eq_hash(key) % nb;
        let mut chain = self.load(buckets.addr() + 4 + 4 * idx);
        while chain.is_ptr() {
            self.charge(InstrClass::Program, 4);
            let entry = self.load(chain.addr() + 4);
            let k = self.load(entry.addr() + 4);
            if k == key {
                self.acc = self.load(entry.addr() + 8);
                return Ok(());
            }
            chain = self.load(chain.addr() + 8);
        }
        self.acc = default;
        Ok(())
    }

    fn table_set(&mut self) -> Result<(), VmError> {
        self.maybe_rehash(3, 0, "table-set!")?;
        self.ensure_free(24)?;
        let val = self.pop();
        let (table, key) = self.pop2();
        let buckets = self.load(table.addr() + 4);
        let nb = self.traced_header(buckets).len();
        let idx = eq_hash(key) % nb;
        let mut chain = self.load(buckets.addr() + 4 + 4 * idx);
        while chain.is_ptr() {
            self.charge(InstrClass::Program, 4);
            let entry = self.load(chain.addr() + 4);
            let k = self.load(entry.addr() + 4);
            if k == key {
                self.heap_store(entry.addr() + 8, val);
                self.acc = Value::unspecified();
                return Ok(());
            }
            chain = self.load(chain.addr() + 8);
        }
        let entry = self.alloc(ObjKind::Pair, &[key, val])?;
        let head = self.load(buckets.addr() + 4 + 4 * idx);
        let link = self.alloc(ObjKind::Pair, &[entry, head])?;
        self.heap_store(buckets.addr() + 4 + 4 * idx, link);
        let count = self.load(table.addr() + 8).as_fixnum();
        self.heap_store(table.addr() + 8, Value::fixnum(count + 1));
        // Grow once the load factor passes 3: keep the table pointer rooted
        // on the stack across the resizing rehash.
        if (count + 1) as u32 > 3 * nb {
            self.push(table)?;
            self.rehash_table_slot(self.sp - 4, InstrClass::Program)?;
            let _ = self.pop();
        }
        self.acc = Value::unspecified();
        Ok(())
    }
}
