//! Rendering simulated heap values as text.
//!
//! Printing is an I/O concern, so it walks the heap *untraced* (the
//! paper's programs are non-interactive and their output is negligible
//! next to their computation); the `display` primitive charges
//! instructions separately.

use cachegc_heap::{Header, Heap, ObjKind, Value};

const MAX_NODES: usize = 100_000;

/// Render `v` into `out`, reading object contents directly from the heap.
pub(crate) fn print_value(heap: &Heap, v: Value, out: &mut String) {
    let mut budget = MAX_NODES;
    print_rec(heap, v, out, &mut budget);
}

/// Render `v` to a fresh string.
pub(crate) fn to_display_string(heap: &Heap, v: Value) -> String {
    let mut s = String::new();
    print_value(heap, v, &mut s);
    s
}

fn peek_string(heap: &Heap, ptr: Value) -> String {
    let len = Value::from_bits(heap.peek(ptr.addr() + 4)).as_fixnum() as usize;
    let mut bytes = Vec::with_capacity(len);
    for i in 0..len.div_ceil(4) {
        let w = heap.peek(ptr.addr() + 8 + 4 * i as u32);
        for b in 0..4 {
            if bytes.len() < len {
                bytes.push((w >> (8 * b)) as u8);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn print_rec(heap: &Heap, v: Value, out: &mut String, budget: &mut usize) {
    if *budget == 0 {
        out.push_str("...");
        return;
    }
    *budget -= 1;
    if v.is_fixnum() {
        out.push_str(&v.as_fixnum().to_string());
    } else if v.is_nil() {
        out.push_str("()");
    } else if v == Value::bool(true) {
        out.push_str("#t");
    } else if v == Value::bool(false) {
        out.push_str("#f");
    } else if v.is_unspecified() {
        out.push_str("#<unspecified>");
    } else if v.is_undefined() {
        out.push_str("#<undefined>");
    } else if let Some(c) = v.as_char() {
        out.push(c);
    } else if v.is_ptr() {
        let header = Header::from_bits(heap.peek(v.addr()));
        match header.kind() {
            ObjKind::Pair => {
                out.push('(');
                let mut cur = v;
                loop {
                    if *budget == 0 {
                        out.push_str("...");
                        break;
                    }
                    *budget -= 1;
                    let car = Value::from_bits(heap.peek(cur.addr() + 4));
                    print_rec(heap, car, out, budget);
                    let cdr = Value::from_bits(heap.peek(cur.addr() + 8));
                    if cdr.is_nil() {
                        break;
                    }
                    if cdr.is_ptr()
                        && Header::from_bits(heap.peek(cdr.addr())).kind() == ObjKind::Pair
                    {
                        out.push(' ');
                        cur = cdr;
                    } else {
                        out.push_str(" . ");
                        print_rec(heap, cdr, out, budget);
                        break;
                    }
                }
                out.push(')');
            }
            ObjKind::Vector => {
                out.push_str("#(");
                for i in 0..header.len() {
                    if i > 0 {
                        out.push(' ');
                    }
                    let e = Value::from_bits(heap.peek(v.addr() + 4 + 4 * i));
                    print_rec(heap, e, out, budget);
                }
                out.push(')');
            }
            ObjKind::String => out.push_str(&peek_string(heap, v)),
            ObjKind::Symbol => {
                let name = Value::from_bits(heap.peek(v.addr() + 4));
                out.push_str(&peek_string(heap, name));
            }
            ObjKind::Flonum => {
                let lo = heap.peek(v.addr() + 4) as u64;
                let hi = heap.peek(v.addr() + 8) as u64;
                let x = f64::from_bits(hi << 32 | lo);
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            }
            ObjKind::Closure => out.push_str("#<procedure>"),
            ObjKind::Cell => {
                out.push_str("#<cell ");
                let inner = Value::from_bits(heap.peek(v.addr() + 4));
                print_rec(heap, inner, out, budget);
                out.push('>');
            }
            ObjKind::Table => out.push_str("#<table>"),
        }
    } else {
        out.push_str(&format!("#<value {:#x}>", v.bits()));
    }
}
