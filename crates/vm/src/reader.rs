//! The s-expression reader.

use crate::error::VmError;
use crate::sexp::Sexp;

/// Parse a whole source text into its top-level forms.
///
/// Supports symbols, integers, floats, strings, characters (`#\a`,
/// `#\space`, `#\newline`), booleans (`#t`, `#f`), proper lists, quotation
/// (`'x` reads as `(quote x)`), and `;` line comments.
///
/// # Errors
///
/// Returns [`VmError::Read`] on malformed input (unbalanced parentheses,
/// bad literals, stray closing parens).
///
/// ```
/// use cachegc_vm::read;
/// let forms = read("(+ 1 2) 'a").unwrap();
/// assert_eq!(forms.len(), 2);
/// assert_eq!(forms[1].to_string(), "(quote a)");
/// ```
pub fn read(src: &str) -> Result<Vec<Sexp>, VmError> {
    let mut r = Reader {
        chars: src.chars().collect(),
        pos: 0,
    };
    let mut forms = Vec::new();
    loop {
        r.skip_ws();
        if r.at_end() {
            return Ok(forms);
        }
        forms.push(r.form()?);
    }
}

struct Reader {
    chars: Vec<char>,
    pos: usize,
}

impl Reader {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c == ';' {
                while let Some(c) = self.next() {
                    if c == '\n' {
                        break;
                    }
                }
            } else if c.is_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, msg: impl Into<String>) -> VmError {
        VmError::Read(format!("{} (at char {})", msg.into(), self.pos))
    }

    fn form(&mut self) -> Result<Sexp, VmError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some('(') => self.list(),
            Some(')') => Err(self.err("unexpected ')'")),
            Some('\'') => {
                self.next();
                let quoted = self.form()?;
                Ok(Sexp::List(vec![Sexp::sym("quote"), quoted]))
            }
            Some('"') => self.string(),
            Some('#') => self.hash(),
            Some(_) => self.atom(),
        }
    }

    fn list(&mut self) -> Result<Sexp, VmError> {
        self.next(); // consume '('
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated list")),
                Some(')') => {
                    self.next();
                    return Ok(Sexp::List(items));
                }
                Some(_) => items.push(self.form()?),
            }
        }
    }

    fn string(&mut self) -> Result<Sexp, VmError> {
        self.next(); // consume '"'
        let mut s = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(Sexp::Str(s)),
                Some('\\') => match self.next() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    other => return Err(self.err(format!("bad string escape {other:?}"))),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn hash(&mut self) -> Result<Sexp, VmError> {
        self.next(); // consume '#'
        match self.next() {
            Some('t') => Ok(Sexp::Bool(true)),
            Some('f') => Ok(Sexp::Bool(false)),
            Some('\\') => {
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' {
                        break;
                    }
                    name.push(c);
                    self.pos += 1;
                }
                match name.as_str() {
                    "space" => Ok(Sexp::Char(' ')),
                    "newline" => Ok(Sexp::Char('\n')),
                    "tab" => Ok(Sexp::Char('\t')),
                    s if s.chars().count() == 1 => Ok(Sexp::Char(s.chars().next().unwrap())),
                    s => Err(self.err(format!("bad character literal #\\{s}"))),
                }
            }
            other => Err(self.err(format!("bad # syntax {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<Sexp, VmError> {
        let mut tok = String::new();
        while let Some(c) = self.peek() {
            if c.is_whitespace() || c == '(' || c == ')' || c == ';' || c == '"' || c == '\'' {
                break;
            }
            tok.push(c);
            self.pos += 1;
        }
        debug_assert!(!tok.is_empty());
        // Numbers: optional sign, then digits; a '.' makes it a float.
        let numeric_start = tok.chars().next().is_some_and(|c| c.is_ascii_digit())
            || (tok.len() > 1
                && (tok.starts_with('-') || tok.starts_with('+'))
                && tok
                    .chars()
                    .nth(1)
                    .is_some_and(|c| c.is_ascii_digit() || c == '.'));
        if numeric_start {
            if tok.contains('.') || tok.contains('e') || tok.contains('E') {
                if let Ok(x) = tok.parse::<f64>() {
                    return Ok(Sexp::Float(x));
                }
            } else if let Ok(n) = tok.parse::<i64>() {
                return Ok(Sexp::Int(n));
            }
            // Token looked numeric but isn't (e.g. "1+"): it's a symbol.
        }
        Ok(Sexp::Sym(tok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Sexp {
        let forms = read(src).unwrap();
        assert_eq!(forms.len(), 1, "{src}");
        forms.into_iter().next().unwrap()
    }

    #[test]
    fn atoms() {
        assert_eq!(one("foo"), Sexp::sym("foo"));
        assert_eq!(one("42"), Sexp::Int(42));
        assert_eq!(one("-17"), Sexp::Int(-17));
        assert_eq!(one("+5"), Sexp::Int(5));
        assert_eq!(one("3.25"), Sexp::Float(3.25));
        assert_eq!(one("-1e3"), Sexp::Float(-1000.0));
        assert_eq!(one("#t"), Sexp::Bool(true));
        assert_eq!(one("#f"), Sexp::Bool(false));
        assert_eq!(one("#\\a"), Sexp::Char('a'));
        assert_eq!(one("#\\space"), Sexp::Char(' '));
        assert_eq!(one("\"hi\\n\""), Sexp::Str("hi\n".into()));
        assert_eq!(one("-"), Sexp::sym("-"));
        assert_eq!(one("1+"), Sexp::sym("1+"), "T-style name is a symbol");
    }

    #[test]
    fn lists_and_nesting() {
        assert_eq!(one("()"), Sexp::List(vec![]));
        assert_eq!(
            one("(a (b 1) 2)"),
            Sexp::List(vec![
                Sexp::sym("a"),
                Sexp::List(vec![Sexp::sym("b"), Sexp::Int(1)]),
                Sexp::Int(2)
            ])
        );
    }

    #[test]
    fn quote_sugar() {
        assert_eq!(
            one("'x"),
            Sexp::List(vec![Sexp::sym("quote"), Sexp::sym("x")])
        );
        assert_eq!(one("''x").to_string(), "(quote (quote x))");
    }

    #[test]
    fn comments_are_skipped() {
        let forms = read("; leading\n(a) ; trailing\n(b)").unwrap();
        assert_eq!(forms.len(), 2);
    }

    #[test]
    fn roundtrip_through_display() {
        let src = "(define (fact n) (if (< n 2) 1 (* n (fact (- n 1)))))";
        let form = one(src);
        assert_eq!(one(&form.to_string()), form);
    }

    #[test]
    fn errors() {
        assert!(read("(a").is_err());
        assert!(read(")").is_err());
        assert!(read("\"abc").is_err());
        assert!(read("#\\toolong").is_err());
        assert!(read("#q").is_err());
    }
}
