//! S-expressions, the reader's output and the compiler's input.

use std::fmt;

/// A parsed s-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexp {
    /// A symbol.
    Sym(String),
    /// An exact integer.
    Int(i64),
    /// An inexact real.
    Float(f64),
    /// A string literal.
    Str(String),
    /// A character literal.
    Char(char),
    /// A boolean literal.
    Bool(bool),
    /// A proper list.
    List(Vec<Sexp>),
}

impl Sexp {
    /// Shorthand for a symbol.
    pub fn sym(s: &str) -> Sexp {
        Sexp::Sym(s.to_string())
    }

    /// The symbol's name, if this is a symbol.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Sexp::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The list's elements, if this is a list.
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(items) => Some(items),
            _ => None,
        }
    }

    /// True if this is the empty list.
    pub fn is_nil(&self) -> bool {
        matches!(self, Sexp::List(items) if items.is_empty())
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Sym(s) => write!(f, "{s}"),
            Sexp::Int(n) => write!(f, "{n}"),
            Sexp::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Sexp::Str(s) => write!(f, "{s:?}"),
            Sexp::Char(c) => match c {
                ' ' => write!(f, "#\\space"),
                '\n' => write!(f, "#\\newline"),
                c => write!(f, "#\\{c}"),
            },
            Sexp::Bool(true) => write!(f, "#t"),
            Sexp::Bool(false) => write!(f, "#f"),
            Sexp::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = Sexp::List(vec![
            Sexp::sym("define"),
            Sexp::sym("x"),
            Sexp::Int(-3),
            Sexp::Float(2.0),
            Sexp::Bool(true),
            Sexp::Char(' '),
            Sexp::Str("hi".into()),
            Sexp::List(vec![]),
        ]);
        assert_eq!(e.to_string(), "(define x -3 2.0 #t #\\space \"hi\" ())");
    }

    #[test]
    fn accessors() {
        assert_eq!(Sexp::sym("a").as_sym(), Some("a"));
        assert_eq!(Sexp::Int(1).as_sym(), None);
        assert!(Sexp::List(vec![]).is_nil());
        assert!(!Sexp::List(vec![Sexp::Int(1)]).is_nil());
    }
}
