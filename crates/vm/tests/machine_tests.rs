//! End-to-end tests of the Scheme system: reader → compiler → machine,
//! with and without garbage collection.

use cachegc_gc::{CheneyCollector, Collector, GenerationalCollector, NoCollector};
use cachegc_trace::{Context, NullSink, RefCounter};
use cachegc_vm::{Machine, VmError};

fn eval(src: &str) -> String {
    let mut m = Machine::new(NoCollector::new(), NullSink);
    match m.run_program(src) {
        Ok(v) => m.display_value(v),
        Err(e) => panic!("{src}: {e}"),
    }
}

fn eval_gc(src: &str, semispace: u32) -> String {
    let mut m = Machine::new(CheneyCollector::new(semispace), NullSink);
    match m.run_program(src) {
        Ok(v) => m.display_value(v),
        Err(e) => panic!("{src}: {e}"),
    }
}

#[test]
fn arithmetic() {
    assert_eq!(eval("(+ 1 2)"), "3");
    assert_eq!(eval("(- 10 4 3)"), "3");
    assert_eq!(eval("(* 2 3 4)"), "24");
    assert_eq!(eval("(/ 12 4)"), "3");
    assert_eq!(eval("(/ 1 2)"), "0.5");
    assert_eq!(eval("(- 5)"), "-5");
    assert_eq!(eval("(quotient 17 5)"), "3");
    assert_eq!(eval("(remainder 17 5)"), "2");
    assert_eq!(eval("(modulo -7 3)"), "2");
    assert_eq!(eval("(min 3 1)"), "1");
    assert_eq!(eval("(max 3 1)"), "3");
    assert_eq!(eval("(abs -4)"), "4");
}

#[test]
fn flonum_arithmetic() {
    assert_eq!(eval("(+ 1.5 2.5)"), "4.0");
    assert_eq!(eval("(* 2.0 3)"), "6.0");
    assert_eq!(eval("(sqrt 16)"), "4.0");
    assert_eq!(eval("(exact->inexact 3)"), "3.0");
    assert_eq!(eval("(floor 3.7)"), "3.0");
    assert_eq!(eval("(< 1.5 2)"), "#t");
    assert_eq!(eval("(= 2.0 2)"), "#t");
    assert_eq!(eval("(integer? 2.0)"), "#t");
    assert_eq!(eval("(integer? 2.5)"), "#f");
}

#[test]
fn fixnum_overflow_promotes() {
    // 2^29 exceeds the 30-bit fixnum range; result becomes a flonum.
    assert_eq!(eval("(* 536870912 2)"), "1073741824.0");
}

#[test]
fn comparisons_and_predicates() {
    assert_eq!(eval("(< 1 2)"), "#t");
    assert_eq!(eval("(>= 2 2)"), "#t");
    assert_eq!(eval("(zero? 0)"), "#t");
    assert_eq!(eval("(pair? '(1))"), "#t");
    assert_eq!(eval("(pair? '())"), "#f");
    assert_eq!(eval("(null? '())"), "#t");
    assert_eq!(eval("(symbol? 'a)"), "#t");
    assert_eq!(eval("(number? 3.5)"), "#t");
    assert_eq!(eval("(string? \"s\")"), "#t");
    assert_eq!(eval("(vector? (make-vector 2 0))"), "#t");
    assert_eq!(eval("(procedure? car)"), "#t");
    assert_eq!(eval("(boolean? #f)"), "#t");
    assert_eq!(eval("(not #f)"), "#t");
    assert_eq!(eval("(even? 4)"), "#t");
    assert_eq!(eval("(odd? 4)"), "#f");
}

#[test]
fn equality() {
    assert_eq!(eval("(eq? 'a 'a)"), "#t", "symbols are interned");
    assert_eq!(eval("(eq? (list 1) (list 1))"), "#f");
    assert_eq!(
        eval("(eq? '(1) '(1))"),
        "#t",
        "literals are shared static constants"
    );
    assert_eq!(eval("(eqv? 1.5 1.5)"), "#t");
    assert_eq!(eval("(equal? '(1 (2 3)) '(1 (2 3)))"), "#t");
    assert_eq!(eval("(equal? '(1 2) '(1 3))"), "#f");
    assert_eq!(eval("(equal? \"ab\" \"ab\")"), "#t");
}

#[test]
fn lists_and_prelude() {
    assert_eq!(eval("(car '(1 2 3))"), "1");
    assert_eq!(eval("(cdr '(1 2 3))"), "(2 3)");
    assert_eq!(eval("(cons 1 2)"), "(1 . 2)");
    assert_eq!(eval("(list 1 2 3)"), "(1 2 3)");
    assert_eq!(eval("(length '(a b c))"), "3");
    assert_eq!(eval("(append '(1 2) '(3))"), "(1 2 3)");
    assert_eq!(eval("(reverse '(1 2 3))"), "(3 2 1)");
    assert_eq!(eval("(map (lambda (x) (* x x)) '(1 2 3))"), "(1 4 9)");
    assert_eq!(eval("(filter even? '(1 2 3 4))"), "(2 4)");
    assert_eq!(eval("(assq 'b '((a 1) (b 2)))"), "(b 2)");
    assert_eq!(eval("(memq 'c '(a b c d))"), "(c d)");
    assert_eq!(eval("(fold-left + 0 '(1 2 3 4))"), "10");
    assert_eq!(eval("(fold-right cons '() '(1 2))"), "(1 2)");
    assert_eq!(eval("(list-ref '(a b c) 1)"), "b");
    assert_eq!(eval("(iota 4)"), "(0 1 2 3)");
    assert_eq!(eval("(expt 2 10)"), "1024");
}

#[test]
fn vectors() {
    assert_eq!(eval("(vector-length (make-vector 5 0))"), "5");
    assert_eq!(
        eval("(let ((v (make-vector 3 0))) (vector-set! v 1 'x) (vector-ref v 1))"),
        "x"
    );
    assert_eq!(eval("(list->vector '(1 2))"), "#(1 2)");
    assert_eq!(eval("(vector->list (list->vector '(1 2 3)))"), "(1 2 3)");
    assert_eq!(
        eval("(let ((v (make-vector 2 9))) (vector-fill! v 7) (vector-ref v 0))"),
        "7"
    );
}

#[test]
fn mutation_and_closures() {
    assert_eq!(
        eval(
            "(define (counter) (let ((n 0)) (lambda () (set! n (+ n 1)) n)))
              (define c (counter))
              (c) (c) (c)"
        ),
        "3"
    );
    assert_eq!(
        eval("(define (adder n) (lambda (x) (+ x n))) ((adder 10) 32)"),
        "42"
    );
    // Two closures over the same mutable binding share state.
    assert_eq!(
        eval(
            "(define pair-of
                (let ((n 0))
                  (cons (lambda () (set! n (+ n 1)) n)
                        (lambda () n))))
              ((car pair-of)) ((car pair-of)) ((cdr pair-of))"
        ),
        "2"
    );
}

#[test]
fn recursion_and_tail_calls() {
    assert_eq!(
        eval("(define (fact n) (if (< n 2) 1 (* n (fact (- n 1))))) (fact 10)"),
        "3628800"
    );
    assert_eq!(
        eval("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 15)"),
        "610"
    );
    // A million iterations: only possible with frame-reusing tail calls.
    assert_eq!(
        eval("(let loop ((i 0) (acc 0)) (if (= i 1000000) acc (loop (+ i 1) (+ acc 1))))"),
        "1000000"
    );
    // Mutual recursion through globals, tail position.
    assert_eq!(
        eval(
            "(define (ev? n) (if (zero? n) #t (od? (- n 1))))
              (define (od? n) (if (zero? n) #f (ev? (- n 1))))
              (ev? 100001)"
        ),
        "#f"
    );
}

#[test]
fn binding_forms() {
    assert_eq!(eval("(let ((x 1) (y 2)) (+ x y))"), "3");
    assert_eq!(eval("(let* ((x 1) (y (+ x 1))) y)"), "2");
    assert_eq!(
        eval(
            "(letrec ((even (lambda (n) (if (zero? n) #t (odd (- n 1)))))
                       (odd (lambda (n) (if (zero? n) #f (even (- n 1))))))
                (even 10))"
        ),
        "#t"
    );
    assert_eq!(eval("(cond (#f 1) ((= 1 1) 2) (else 3))"), "2");
    assert_eq!(eval("(cond (#f 1) (else 3))"), "3");
    assert_eq!(eval("(and 1 2 3)"), "3");
    assert_eq!(eval("(and 1 #f 3)"), "#f");
    assert_eq!(eval("(or #f 2)"), "2");
    assert_eq!(eval("(or #f #f)"), "#f");
    assert_eq!(eval("(when (= 1 1) 'yes)"), "yes");
    assert_eq!(eval("(unless (= 1 2) 'no)"), "no");
}

#[test]
fn higher_order_prims_as_values() {
    assert_eq!(eval("(map car '((1 2) (3 4)))"), "(1 3)");
    assert_eq!(eval("((lambda (f) (f 2 3)) +)"), "5");
    assert_eq!(eval("(fold-left * 1 '(1 2 3 4 5))"), "120");
}

#[test]
fn display_output() {
    let mut m = Machine::new(NoCollector::new(), NullSink);
    m.run_program("(display \"x=\") (display 42) (newline) (display '(1 2))")
        .unwrap();
    assert_eq!(m.output(), "x=42\n(1 2)");
}

#[test]
fn runtime_errors() {
    let mut m = Machine::new(NoCollector::new(), NullSink);
    assert!(matches!(m.run_program("(car 5)"), Err(VmError::Runtime(_))));
    let mut m = Machine::new(NoCollector::new(), NullSink);
    assert!(matches!(
        m.run_program("(vector-ref (make-vector 2 0) 5)"),
        Err(VmError::Runtime(_))
    ));
    let mut m = Machine::new(NoCollector::new(), NullSink);
    assert!(matches!(
        m.run_program("(undefined-fn 1)"),
        Err(VmError::Runtime(_))
    ));
    let mut m = Machine::new(NoCollector::new(), NullSink);
    assert!(matches!(
        m.run_program("(error \"boom\" 42)"),
        Err(VmError::Runtime(_))
    ));
    let mut m = Machine::new(NoCollector::new(), NullSink);
    assert!(matches!(m.run_program("(/ 1 0)"), Err(VmError::Runtime(_))));
    let mut m = Machine::new(NoCollector::new(), NullSink);
    assert!(matches!(
        m.run_program("((lambda (x) x) 1 2)"),
        Err(VmError::Runtime(_))
    ));
}

#[test]
fn hash_tables() {
    assert_eq!(
        eval("(define t (make-table))
              (table-set! t 'a 1)
              (table-set! t 'b 2)
              (table-set! t 'a 10)
              (list (table-ref t 'a #f) (table-ref t 'b #f) (table-ref t 'c 'none) (table-count t))"),
        "(10 2 none 2)"
    );
    // Enough inserts to force growth.
    assert_eq!(
        eval(
            "(define t (make-table))
              (let loop ((i 0))
                (if (< i 200)
                    (begin (table-set! t i (* i i)) (loop (+ i 1)))
                    'done))
              (list (table-ref t 150 #f) (table-ref t 0 #f))"
        ),
        "(22500 0)"
    );
}

// ---------------------------------------------------------------------
// Runs under garbage collection
// ---------------------------------------------------------------------

/// Allocates ~7.2 MB of short-lived pairs while keeping a modest live list.
const CHURN: &str = "
(define (churn rounds)
  (let loop ((r 0) (keep '()))
    (if (= r rounds)
        (length keep)
        (loop (+ r 1)
              (if (= (remainder r 100) 0)
                  (cons r keep)
                  (begin (iota 50) keep))))))
(churn 12000)";

#[test]
fn cheney_collected_run_matches_uncollected() {
    let expect = eval(CHURN);
    let got = eval_gc(CHURN, 1 << 20); // 1 MB semispaces force many collections
    assert_eq!(got, expect);
    let mut m = Machine::new(CheneyCollector::new(1 << 20), NullSink);
    m.run_program(CHURN).unwrap();
    assert!(
        m.collector().stats().collections >= 5,
        "collections actually happened"
    );
    assert!(m.counters().collector() > 0, "I_gc charged");
}

#[test]
fn generational_collected_run_matches_uncollected() {
    let expect = eval(CHURN);
    let mut m = Machine::new(GenerationalCollector::new(256 << 10, 8 << 20), NullSink);
    let v = m.run_program(CHURN).unwrap();
    assert_eq!(m.display_value(v), expect);
    let st = m.collector().stats();
    assert!(st.minor_collections >= 10);
    assert!(st.barrier_stores > 0, "write barrier exercised");
}

#[test]
fn deep_structure_survives_collections() {
    let src = "
    (define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
    (define keep (build 2000))
    (define (waste n) (if (zero? n) 'ok (begin (make-vector 100 0) (waste (- n 1)))))
    (waste 5000)
    (fold-left + 0 keep)";
    let expect = eval(src);
    assert_eq!(eval_gc(src, 1 << 20), expect);
    let mut m = Machine::new(GenerationalCollector::new(128 << 10, 8 << 20), NullSink);
    let v = m.run_program(src).unwrap();
    assert_eq!(m.display_value(v), expect);
}

#[test]
fn table_rehashes_after_collection() {
    let src = "
    (define t (make-table))
    (define k1 (cons 1 2))
    (define k2 (cons 3 4))
    (table-set! t k1 'one)
    (table-set! t k2 'two)
    (define (waste n) (if (zero? n) 'ok (begin (iota 40) (waste (- n 1)))))
    (waste 20000)
    (list (table-ref t k1 #f) (table-ref t k2 #f) (gc-epoch))";
    // Pointer keys hash by address; after collections move them, lookups
    // must still succeed (via rehash on next use).
    let mut m = Machine::new(CheneyCollector::new(1 << 20), NullSink);
    let v = m.run_program(src).unwrap();
    let shown = m.display_value(v);
    assert!(shown.starts_with("(one two "), "{shown}");
    assert!(m.collector().stats().collections > 0);
    assert!(
        m.counters().gc_induced() > 0,
        "rehash work charged to ΔI_prog"
    );
}

#[test]
fn reference_trace_is_produced() {
    let mut m = Machine::new(NoCollector::new(), RefCounter::new());
    m.run_program("(define (f n) (if (zero? n) '() (cons n (f (- n 1))))) (length (f 100))")
        .unwrap();
    let sink = m.sink();
    assert!(sink.by_context(Context::Mutator) > 1000);
    assert!(
        sink.alloc_writes() >= 300,
        "100 pairs = 300 initializing writes"
    );
    assert_eq!(sink.by_context(Context::Collector), 0);
}

#[test]
fn collector_trace_attribution() {
    let mut m = Machine::new(CheneyCollector::new(1 << 20), RefCounter::new());
    m.run_program(CHURN).unwrap();
    let sink = m.sink();
    assert!(
        sink.by_context(Context::Collector) > 0,
        "GC refs attributed to collector"
    );
    assert!(sink.by_context(Context::Mutator) > sink.by_context(Context::Collector));
}

#[test]
fn instruction_to_reference_ratio_is_plausible() {
    // The paper's programs make ~0.26-0.3 data references per instruction.
    let mut m = Machine::new(NoCollector::new(), RefCounter::new());
    m.run_program("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 18)")
        .unwrap();
    let refs = m.sink().total() as f64;
    let insns = m.counters().program() as f64;
    let ratio = refs / insns;
    assert!((0.15..0.6).contains(&ratio), "refs/insns = {ratio}");
}

#[test]
fn stack_overflow_is_detected() {
    let mut m = Machine::new(NoCollector::new(), NullSink);
    let r = m.run_program("(define (f n) (+ 1 (f n))) (f 0)");
    assert!(matches!(r, Err(VmError::StackOverflow)), "{r:?}");
}

#[test]
fn out_of_memory_reported_with_tiny_cheney_heap() {
    let mut m = Machine::new(CheneyCollector::new(4096), NullSink);
    let r = m.run_program(
        "(define (build n) (if (zero? n) '() (cons n (build (- n 1))))) (build 10000)",
    );
    assert!(matches!(r, Err(VmError::OutOfMemory(_))), "{r:?}");
}

#[test]
fn printer_forms() {
    assert_eq!(eval("(cons 1 (cons 2 3))"), "(1 2 . 3)");
    assert_eq!(eval("(list->vector (list 1 (list 2) #\\a))"), "#(1 (2) a)");
    assert_eq!(eval("'()"), "()");
    assert_eq!(eval("(cons '() '())"), "(())");
    assert_eq!(eval("\"str\""), "str");
    assert_eq!(eval("#\\z"), "z");
    assert_eq!(eval("(if #f #f)"), "#<unspecified>");
}

#[test]
fn closures_created_during_gc_pressure() {
    // Closure creation reserves memory with captures still on the stack;
    // a collection at that moment must keep them rooted.
    let src = "
    (define (make-adders n)
      (if (zero? n) '()
          (cons (lambda (x) (+ x n)) (make-adders (- n 1)))))
    (define (sum-apply fs v)
      (if (null? fs) 0 (+ ((car fs) v) (sum-apply (cdr fs) v))))
    (let loop ((r 0) (acc 0))
      (if (= r 400)
          acc
          (loop (+ r 1) (+ acc (sum-apply (make-adders 20) 1)))))";
    let expect = eval(src);
    assert_eq!(
        eval_gc(src, 1 << 14),
        expect,
        "tiny semispaces force GC mid-build"
    );
}

#[test]
fn deep_nesting_of_binding_forms() {
    assert_eq!(
        eval(
            "(let ((a 1))
                (let ((b (+ a 1)))
                  (letrec ((f (lambda (n) (if (zero? n) b (g (- n 1)))))
                           (g (lambda (n) (f n))))
                    (let* ((c (f 10)) (d (+ c a)))
                      (list a b c d)))))"
        ),
        "(1 2 2 3)"
    );
}

#[test]
fn global_redefinition_takes_effect() {
    assert_eq!(
        eval("(define x 1) (define (get) x) (define x 2) (get)"),
        "2"
    );
    assert_eq!(eval("(define (f) 1) (define (f) 2) (f)"), "2");
}

#[test]
fn numeric_edge_cases() {
    assert_eq!(eval("(min 1.5 2)"), "1.5");
    assert_eq!(eval("(max 1.5 2)"), "2");
    assert_eq!(eval("(abs -2.5)"), "2.5");
    assert_eq!(eval("(quotient -17 5)"), "-3");
    assert_eq!(eval("(remainder -17 5)"), "-2");
    assert_eq!(eval("(modulo -17 5)"), "3");
    assert_eq!(eval("(floor -1.5)"), "-2.0");
    assert_eq!(eval("(inexact->exact 3.9)"), "3");
    assert_eq!(eval("(/ 1.0 0.0)"), "inf");
}

#[test]
fn symbols_and_strings() {
    assert_eq!(eval("(symbol->string 'hello)"), "hello");
    assert_eq!(eval("(string-length \"hello\")"), "5");
    assert_eq!(
        eval("(eq? (symbol->string 'a) (symbol->string 'a))"),
        "#t",
        "interned"
    );
}

#[test]
fn table_with_fixnum_and_symbol_keys_survives_gc() {
    let src = "
    (define t (make-table))
    (let fill ((i 0))
      (if (< i 50) (begin (table-set! t i (* i 2)) (fill (+ i 1))) 'done))
    (table-set! t 'sym 'val)
    (define (waste n) (if (zero? n) 'ok (begin (iota 30) (waste (- n 1)))))
    (waste 30000)
    (list (table-ref t 25 #f) (table-ref t 'sym #f) (table-count t))";
    let mut m = Machine::new(CheneyCollector::new(1 << 20), NullSink);
    let v = m.run_program(src).unwrap();
    assert_eq!(m.display_value(v), "(50 val 51)");
    assert!(m.collector().stats().collections > 0);
}
