//! Print the §3 table's raw numbers for each workload at scale 1:
//! references, instructions, allocation, and the refs/instruction ratio
//! the instruction-cost model is calibrated against.

use cachegc_gc::NoCollector;
use cachegc_trace::RefCounter;
use cachegc_workloads::Workload;

fn main() {
    for w in Workload::ALL {
        let t = std::time::Instant::now();
        let out = w
            .scaled(1)
            .run(NoCollector::new(), RefCounter::new())
            .unwrap();
        let refs = out.sink.total();
        let insns = out.stats.instructions.program();
        println!(
            "{:8} refs={:>12} insns={:>12} alloc={:>12} ratio={:.3} result={} [{:?}]",
            w.name(),
            refs,
            insns,
            out.stats.allocated_bytes,
            refs as f64 / insns as f64,
            &out.result[..out.result.len().min(40)],
            t.elapsed()
        );
    }
}
