//! The five test programs (§3 of the paper) and synthetic trace generators.
//!
//! The paper measures orbit (a Scheme compiler), imps (a theorem prover),
//! lp (a λ-calculus reduction engine), nbody (Zhao's linear-time N-body
//! algorithm), and gambit (a second, quite different compiler). Those exact
//! programs are not available, so this crate provides five real Scheme
//! programs in the same application classes, with the same qualitative
//! memory behaviors (see DESIGN.md §3 for the substitution argument):
//!
//! | paper   | here                | class                                 |
//! |---------|---------------------|---------------------------------------|
//! | orbit   | [`Workload::Compile`] | expression compiler: rename → emit → peephole |
//! | imps    | [`Workload::Prove`]   | propositional resolution prover (pigeonhole) |
//! | lp      | [`Workload::Lambda`]  | λ-calculus normalizer with a monotonically growing live structure |
//! | nbody   | [`Workload::Nbody`]   | O(N) cell-decomposition 3-D N-body, flonum-heavy |
//! | gambit  | [`Workload::Rewrite`] | pattern-matching source-to-source optimizer with long-lived term graphs |
//!
//! Each program is generated as Scheme source parameterized by a `scale`
//! knob; `scale = 1` is a seconds-long smoke run, larger scales approach
//! the paper's run lengths.
//!
//! The [`synthetic`] module provides native reference-stream generators
//! (no VM) for fast unit tests and microbenchmarks of cache behaviors the
//! paper describes: one-cycle allocation sweeps, thrashing busy blocks,
//! and monotonic live growth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod programs;
pub mod synthetic;

use cachegc_gc::Collector;
use cachegc_trace::TraceSink;
use cachegc_vm::{Machine, RunStats, VmError};

/// One of the five test programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Mini Scheme compiler (the orbit analog).
    Compile,
    /// Resolution theorem prover (the imps analog).
    Prove,
    /// λ-calculus reduction engine (the lp analog).
    Lambda,
    /// Linear-time 3-D N-body simulation (nbody).
    Nbody,
    /// Pattern-matching expression optimizer (the gambit analog).
    Rewrite,
}

impl Workload {
    /// All five, in the paper's order.
    pub const ALL: [Workload; 5] = [
        Workload::Compile,
        Workload::Prove,
        Workload::Lambda,
        Workload::Nbody,
        Workload::Rewrite,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Compile => "compile",
            Workload::Prove => "prove",
            Workload::Lambda => "lambda",
            Workload::Nbody => "nbody",
            Workload::Rewrite => "rewrite",
        }
    }

    /// Which of the paper's programs this one stands in for.
    pub fn paper_analog(self) -> &'static str {
        match self {
            Workload::Compile => "orbit",
            Workload::Prove => "imps",
            Workload::Lambda => "lp",
            Workload::Nbody => "nbody",
            Workload::Rewrite => "gambit",
        }
    }

    /// The program's Scheme source at the given scale.
    pub fn source(self, scale: u32) -> String {
        match self {
            Workload::Compile => programs::compile_source(scale),
            Workload::Prove => programs::prove_source(scale),
            Workload::Lambda => programs::lambda_source(scale),
            Workload::Nbody => programs::nbody_source(scale),
            Workload::Rewrite => programs::rewrite_source(scale),
        }
    }

    /// Pair this workload with a scale.
    pub fn scaled(self, scale: u32) -> WorkloadInstance {
        WorkloadInstance {
            workload: self,
            scale,
        }
    }

    /// Source line count of the generated program at scale 1 (the "Lines"
    /// column of the §3 table).
    pub fn lines(self) -> usize {
        self.source(1)
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}

/// A workload at a concrete scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadInstance {
    /// Which program.
    pub workload: Workload,
    /// Scale knob: 1 = smoke run; each increment multiplies the input.
    pub scale: u32,
}

impl WorkloadInstance {
    /// Generated source text.
    pub fn source(&self) -> String {
        self.workload.source(self.scale)
    }

    /// Run the program on a fresh machine with the given collector and
    /// trace sink.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from the run.
    pub fn run<C: Collector, S: TraceSink>(
        &self,
        gc: C,
        sink: S,
    ) -> Result<RunOutcome<C, S>, VmError> {
        let mut machine = Machine::new(gc, sink);
        let value = machine.run_program(&self.source())?;
        let result = machine.display_value(value);
        let stats = machine.stats();
        let output = machine.output().to_string();
        let (collector, sink) = machine.into_parts();
        Ok(RunOutcome {
            stats,
            result,
            output,
            collector,
            sink,
        })
    }
}

/// Everything a completed workload run yields.
#[derive(Debug)]
pub struct RunOutcome<C, S> {
    /// Instruction and allocation statistics.
    pub stats: RunStats,
    /// The program's final value, printed.
    pub result: String,
    /// Anything the program displayed.
    pub output: String,
    /// The collector, with its statistics.
    pub collector: C,
    /// The trace sink (caches, analyzers, counters).
    pub sink: S,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_gc::NoCollector;
    use cachegc_trace::RefCounter;

    #[test]
    fn names_and_analogs_are_distinct() {
        let mut names = std::collections::HashSet::new();
        let mut analogs = std::collections::HashSet::new();
        for w in Workload::ALL {
            assert!(names.insert(w.name()));
            assert!(analogs.insert(w.paper_analog()));
        }
    }

    #[test]
    fn sources_are_real_programs() {
        for w in Workload::ALL {
            assert!(w.lines() > 20, "{} is a real program", w.name());
        }
    }

    #[test]
    fn every_workload_runs_at_scale_1() {
        for w in Workload::ALL {
            let out = w
                .scaled(1)
                .run(NoCollector::new(), RefCounter::new())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert!(
                out.sink.total() > 100_000,
                "{}: {} refs",
                w.name(),
                out.sink.total()
            );
            assert!(out.stats.instructions.program() > out.sink.total());
            assert!(
                out.stats.allocated_bytes > 100_000,
                "{} allocates",
                w.name()
            );
        }
    }
}
