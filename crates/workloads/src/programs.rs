//! Generators for the five test programs' Scheme source.
//!
//! Deterministic: corpus generation uses a fixed-seed LCG, so every run of
//! a given (workload, scale) executes the same instruction stream.

/// A small deterministic generator for corpus construction.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493))
    }

    fn next(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }

    fn below(&mut self, n: u32) -> u32 {
        self.next() % n
    }
}

// ---------------------------------------------------------------------
// compile (orbit analog)
// ---------------------------------------------------------------------

/// Random expression in the toy source language the mini-compiler accepts:
/// numbers, variables, binary primitive calls, `if`, nested `lambda`.
fn gen_expr(rng: &mut Lcg, depth: u32, vars: &mut Vec<String>) -> String {
    if depth == 0 || rng.below(6) == 0 {
        return if !vars.is_empty() && rng.below(3) > 0 {
            vars[rng.below(vars.len() as u32) as usize].clone()
        } else {
            format!("{}", rng.below(100))
        };
    }
    match rng.below(8) {
        0..=2 => {
            let op = ["f", "g", "h"][rng.below(3) as usize];
            format!(
                "({op} {} {})",
                gen_expr(rng, depth - 1, vars),
                gen_expr(rng, depth - 1, vars)
            )
        }
        3 | 4 => format!(
            "(if {} {} {})",
            gen_expr(rng, depth - 1, vars),
            gen_expr(rng, depth - 1, vars),
            gen_expr(rng, depth - 1, vars)
        ),
        5 => {
            let p = format!("t{}", vars.len());
            vars.push(p.clone());
            let body = gen_expr(rng, depth - 1, vars);
            vars.pop();
            format!("(lambda ({p}) {body})")
        }
        _ => format!(
            "({} {})",
            gen_expr(rng, depth - 1, vars),
            gen_expr(rng, depth - 1, vars)
        ),
    }
}

fn gen_corpus(n: u32, depth: u32, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let mut out = String::new();
    for i in 0..n {
        let mut vars = vec!["a".to_string(), "b".to_string()];
        let body = gen_expr(&mut rng, depth, &mut vars);
        out.push_str(&format!("(lambda (a b) {body})\n    "));
        let _ = i;
    }
    out
}

/// The orbit analog: a three-pass expression compiler (alpha-rename →
/// linear code emission → peephole statistics) run over a generated corpus.
pub(crate) fn compile_source(scale: u32) -> String {
    let corpus = gen_corpus(40, 5, 0xC0FFEE);
    let rounds = 25 * scale;
    format!(
        r#"
;; compile: a mini expression compiler (the orbit analog).
(define corpus '({corpus}))
(define gsc 0)
(define (gensym) (set! gsc (+ gsc 1)) gsc)
(define (mkvar n) (list 'v n))
(define (var? e) (if (pair? e) (eq? (car e) 'v) #f))

;; Pass 1: alpha-renaming. Bound symbols become numbered variables; free
;; symbols become global references.
(define (rename e env)
  (cond ((number? e) e)
        ((symbol? e)
         (let ((r (assq e env)))
           (if r (cdr r) (list 'global e))))
        ((pair? e)
         (cond ((eq? (car e) 'lambda)
                (let ((fresh (map (lambda (p) (cons p (mkvar (gensym)))) (cadr e))))
                  (list 'lambda (map cdr fresh)
                        (rename (caddr e) (append fresh env)))))
               ((eq? (car e) 'if)
                (list 'if (rename (cadr e) env)
                      (rename (caddr e) env)
                      (rename (cadddr e) env)))
               (else (map (lambda (x) (rename x env)) e))))
        (else e)))

;; Pass 2: emission of linear three-address code, accumulated in reverse.
;; Returns (instrs . result-temp).
(define (emit e acc)
  (cond ((number? e)
         (let ((t (gensym)))
           (cons (cons (list 'const t e) acc) t)))
        ((var? e) (cons acc (cadr e)))
        ((pair? e)
         (cond ((eq? (car e) 'global)
                (let ((t (gensym)))
                  (cons (cons (list 'gref t (cadr e)) acc) t)))
               ((eq? (car e) 'lambda)
                (let ((body (emit (caddr e) '())))
                  (let ((t (gensym)))
                    (cons (cons (list 'close t (length (car body))) acc) t))))
               ((eq? (car e) 'if)
                (let ((c (emit (cadr e) acc)))
                  (let ((a (emit (caddr e) (car c))))
                    (let ((b (emit (cadddr e) (car a))))
                      (let ((t (gensym)))
                        (cons (cons (list 'phi t (cdr c) (cdr a) (cdr b)) (car b)) t))))))
               (else
                (let loop ((args e) (acc acc) (temps '()))
                  (if (null? args)
                      (let ((t (gensym)))
                        (cons (cons (cons 'call (cons t (reverse temps))) acc) t))
                      (let ((r (emit (car args) acc)))
                        (loop (cdr args) (car r) (cons (cdr r) temps))))))))
        (else (cons acc 0))))

;; Pass 3: peephole statistics in an address-hashed opcode table.
(define opcounts (make-table))
(define (peephole instrs)
  (let loop ((l instrs) (fusable 0))
    (if (null? l) fusable
        (let ((op (car (car l))))
          (table-set! opcounts op (+ 1 (table-ref opcounts op 0)))
          (loop (cdr l)
                (if (pair? (cdr l))
                    (if (eq? op (car (car (cdr l)))) (+ fusable 1) fusable)
                    fusable))))))

(define (compile-one e)
  ;; Corpus items are (lambda (a b) body): compile the body so the whole
  ;; instruction stream reaches the peephole pass.
  (let ((renamed (rename e '())))
    (let ((r (emit (caddr renamed) '())))
      (peephole (car r))
      (car r))))

;; Each round's emitted code survives into the next round (a real compiler
;; holds a compilation unit's code while assembling it), giving a
;; population of medium-lived, few-cycle blocks.
(define prev-codes '())
(let loop ((round 0) (total 0))
  (if (= round {rounds})
      (list total (table-ref opcounts 'call 0) (table-ref opcounts 'const 0))
      (let ((codes (map compile-one corpus)))
        (let ((t (fold-left (lambda (a c) (+ a (length c))) 0 codes)))
          (set! prev-codes codes)
          (loop (+ round 1) (+ total t))))))
"#
    )
}

// ---------------------------------------------------------------------
// prove (imps analog)
// ---------------------------------------------------------------------

/// The imps analog: a propositional resolution prover refuting pigeonhole
/// instances, with a hashed clause index for subsumption by equality.
pub(crate) fn prove_source(scale: u32) -> String {
    let limit = 80 * scale;
    format!(
        r#"
;; prove: resolution refutation of the pigeonhole principle (imps analog).
(define pigeons 6)
(define holes 5)
(define step-limit {limit})
(define (pvar i j) (+ (* i holes) j 1))

;; Clauses are strictly sorted lists of nonzero integer literals.
(define (insert-lit l c)
  (cond ((null? c) (list l))
        ((= l (car c)) c)
        ((< l (car c)) (cons l c))
        (else (cons (car c) (insert-lit l (cdr c))))))

(define (clause-union a b skip1 skip2)
  (let loop ((a a) (acc '()))
    (if (null? a)
        (let loop2 ((b b) (acc acc))
          (if (null? b) acc
              (loop2 (cdr b)
                     (if (= (car b) skip2) acc (insert-lit (car b) acc)))))
        (loop (cdr a)
              (if (= (car a) skip1) acc (insert-lit (car a) acc))))))

(define (tautology? c)
  (let loop ((l c))
    (cond ((null? l) #f)
          ((memq (- 0 (car l)) c) #t)
          (else (loop (cdr l))))))

(define (initial-clauses)
  (let loop-p ((i 0) (cs '()))
    (if (= i pigeons)
        (let loop-h ((j 0) (cs cs))
          (if (= j holes) cs
              (let loop-i1 ((i1 0) (cs cs))
                (if (= i1 pigeons) (loop-h (+ j 1) cs)
                    (let loop-i2 ((i2 (+ i1 1)) (cs cs))
                      (if (= i2 pigeons) (loop-i1 (+ i1 1) cs)
                          (loop-i2 (+ i2 1)
                                   (cons (insert-lit (- 0 (pvar i1 j))
                                                     (list (- 0 (pvar i2 j))))
                                         cs))))))))
        (loop-p (+ i 1)
                (cons (let lp ((j 0) (c '()))
                        (if (= j holes) c
                            (lp (+ j 1) (insert-lit (pvar i j) c))))
                      cs)))))

;; Duplicate detection through a hashed clause index.
(define seen (make-table))
(define (clause-hash c)
  (fold-left (lambda (h l) (remainder (+ (* h 31) (abs l) 7) 999983)) 7 c))
(define (seen? c)
  (let ((h (clause-hash c)))
    (let ((bucket (table-ref seen h '())))
      (if (member c bucket) #t
          (begin (table-set! seen h (cons c bucket)) #f)))))

(define (resolve-all c1 c2)
  (let loop ((ls c1) (acc '()))
    (if (null? ls) acc
        (loop (cdr ls)
              (if (memq (- 0 (car ls)) c2)
                  (cons (clause-union c1 c2 (car ls) (- 0 (car ls))) acc)
                  acc)))))

(define (prove)
  (let loop ((sos (initial-clauses)) (usable '()) (generated 0) (steps 0))
    (cond ((null? sos) (list 'saturated generated steps))
          ((= steps step-limit) (list 'limit generated steps))
          ((null? (car sos)) (list 'proved generated steps))
          (else
           (let ((given (car sos)))
             (let scan ((us usable) (new '()))
               (if (null? us)
                   (loop (append (cdr sos) (reverse new))
                         (cons given usable)
                         (+ generated (length new))
                         (+ steps 1))
                   (let inner ((rs (resolve-all given (car us))) (new new))
                     (if (null? rs)
                         (scan (cdr us) new)
                         (inner (cdr rs)
                                (cond ((tautology? (car rs)) new
                                      )
                                      ((seen? (car rs)) new)
                                      (else (cons (car rs) new)))))))))))))
(prove)
"#
    )
}

// ---------------------------------------------------------------------
// lambda (lp analog)
// ---------------------------------------------------------------------

/// The lp analog: a normal-order λ-calculus reduction engine. Two phases:
/// Church-numeral arithmetic normalization (many fast β-steps on
/// short-lived terms), then reduction of a *growing* non-normalizing term
/// with every reduct retained — the monotonically growing live structure
/// that makes the Cheney collector recopy more data at every collection
/// (the §6 pathology).
pub(crate) fn lambda_source(scale: u32) -> String {
    // Church arithmetic supplies lp's high volume of short-lived terms.
    // Growth and churn interleave in epochs, so the retained structure is
    // live while collections happen — Cheney must recopy it every time,
    // and it keeps growing until the end of the run (lp's §6 pathology).
    // At scale 4 it reaches ~1.2 MB, two thirds of E5's 2 MB semispace.
    let epochs = 6 * scale;
    let growth_per_epoch = 12;
    let church_per_epoch = 20;
    format!(
        r#"
;; lambda: normal-order beta-reduction with de Bruijn indices (lp analog).
(define (tvar n) (list 'var n))
(define (tlam b) (list 'lam b))
(define (tapp f a) (list 'app f a))
(define (tag t) (car t))

(define (shift t d c)
  (cond ((eq? (tag t) 'var)
         (if (< (cadr t) c) t (tvar (+ (cadr t) d))))
        ((eq? (tag t) 'lam) (tlam (shift (cadr t) d (+ c 1))))
        (else (tapp (shift (cadr t) d c) (shift (caddr t) d c)))))

;; t[n := s], renumbering free variables above n.
(define (subst t s n)
  (cond ((eq? (tag t) 'var)
         (cond ((= (cadr t) n) (shift s n 0))
               ((> (cadr t) n) (tvar (- (cadr t) 1)))
               (else t)))
        ((eq? (tag t) 'lam) (tlam (subst (cadr t) s (+ n 1))))
        (else (tapp (subst (cadr t) s n) (subst (caddr t) s n)))))

;; One leftmost-outermost step; returns (reduced? . term).
(define (step t)
  (cond ((eq? (tag t) 'app)
         (let ((f (cadr t)) (a (caddr t)))
           (if (eq? (tag f) 'lam)
               (cons #t (subst (cadr f) a 0))
               (let ((rf (step f)))
                 (if (car rf)
                     (cons #t (tapp (cdr rf) a))
                     (let ((ra (step a)))
                       (cons (car ra) (tapp f (cdr ra)))))))))
        ((eq? (tag t) 'lam)
         (let ((rb (step (cadr t))))
           (cons (car rb) (tlam (cdr rb)))))
        (else (cons #f t))))

(define (tsize t)
  (cond ((eq? (tag t) 'var) 1)
        ((eq? (tag t) 'lam) (+ 1 (tsize (cadr t))))
        (else (+ 1 (tsize (cadr t)) (tsize (caddr t))))))

(define (normalize t fuel)
  (let loop ((t t) (n 0))
    (if (= n fuel) t
        (let ((r (step t)))
          (if (car r) (loop (cdr r) (+ n 1)) t)))))

;; Simple type checker for the Church fragment (the lp engine typechecks
;; its input term before reducing). Types: 'o or (arrow a b).
(define (type-eq? a b)
  (cond ((eq? a b) #t)
        ((if (pair? a) (pair? b) #f)
         (if (type-eq? (cadr a) (cadr b))
             (type-eq? (caddr a) (caddr b)) #f))
        (else #f)))
(define (typecheck t env)
  (cond ((eq? (tag t) 'var) (list-ref env (cadr t)))
        ((eq? (tag t) 'lam) #f) ;; unannotated lambdas: shape-check applications only
        (else
         (let ((tf (typecheck (cadr t) env))
               (ta (typecheck (caddr t) env)))
           (if (pair? tf)
               (if (type-eq? (cadr tf) ta) (caddr tf) 'o)
               'o)))))

;; Church numerals and multiplication.
(define (church n)
  (tlam (tlam (let loop ((k n) (acc (tvar 0)))
                (if (zero? k) acc (loop (- k 1) (tapp (tvar 1) acc)))))))
(define cmul (tlam (tlam (tlam (tapp (tvar 2) (tapp (tvar 1) (tvar 0)))))))

(define (run-church rounds)
  (let loop ((i 0) (acc 0))
    (if (= i rounds) acc
        (loop (+ i 1)
              (+ acc (tsize (normalize (tapp (tapp cmul (church 6)) (church 7))
                                       100000)))))))


;; The growing term: (lam. 0 0 0) applied to itself gains one application
;; per step. Every reduct is retained, so the live structure grows
;; monotonically until the end of the run — exactly lp's behavior.
(define w3 (tlam (tapp (tapp (tvar 0) (tvar 0)) (tvar 0))))
(define omega3 (tapp w3 w3))
(define cur omega3)
(define history '())

(define (grow steps)
  (let loop ((i 0))
    (if (= i steps) (tsize cur)
        (let ((r (step cur)))
          (set! cur (cdr r))
          (set! history (cons cur history))
          (loop (+ i 1))))))

(list (typecheck omega3 '())
      (let loop ((e 0) (acc 0))
        (if (= e {epochs}) acc
            (begin
              (grow {growth_per_epoch})
              (loop (+ e 1) (+ acc (run-church {church_per_epoch}))))))
      (tsize cur)
      (length history))
"#
    )
}

// ---------------------------------------------------------------------
// nbody
// ---------------------------------------------------------------------

/// Zhao-style linear-time N-body: far field through cell centroids, near
/// field exact within each cell; 256 point masses starting at rest in a
/// unit cube, as in the paper. Flonum-heavy, so every arithmetic result is
/// a fresh two-word heap object (as in T, which boxed floats).
pub(crate) fn nbody_source(scale: u32) -> String {
    let steps = 2 * scale;
    format!(
        r#"
;; nbody: O(N) cell-decomposition 3-D N-body (Zhao's algorithm, scaled).
(define nb 256)
(define nsteps {steps})
(define cells-per-axis 4)
(define ncells 64)
(define dt 0.001)
(define eps 0.000001)

(define px (make-vector nb 0.0)) (define py (make-vector nb 0.0)) (define pz (make-vector nb 0.0))
(define vx (make-vector nb 0.0)) (define vy (make-vector nb 0.0)) (define vz (make-vector nb 0.0))
(define ax (make-vector nb 0.0)) (define ay (make-vector nb 0.0)) (define az (make-vector nb 0.0))

(define cmass (make-vector ncells 0.0))
(define ccx (make-vector ncells 0.0)) (define ccy (make-vector ncells 0.0)) (define ccz (make-vector ncells 0.0))
(define members (make-vector ncells '()))

(define seed 48271)
(define (rnd)
  (set! seed (remainder (+ (* seed 331) 12345) 1000003))
  (/ (exact->inexact seed) 1000003.0))

(define (init)
  (let loop ((i 0))
    (if (< i nb)
        (begin
          (vector-set! px i (rnd)) (vector-set! py i (rnd)) (vector-set! pz i (rnd))
          (loop (+ i 1)))
        'done)))

(define (axis-cell x)
  (min (- cells-per-axis 1) (max 0 (inexact->exact (floor (* x 4.0))))))
(define (cell-of i)
  (+ (* (axis-cell (vector-ref px i)) 16)
     (+ (* (axis-cell (vector-ref py i)) 4)
        (axis-cell (vector-ref pz i)))))

(define (clear-cells)
  (let loop ((c 0))
    (if (< c ncells)
        (begin
          (vector-set! cmass c 0.0) (vector-set! ccx c 0.0)
          (vector-set! ccy c 0.0) (vector-set! ccz c 0.0)
          (vector-set! members c '())
          (loop (+ c 1)))
        'done)))

(define (assign-cells)
  (let loop ((i 0))
    (if (< i nb)
        (let ((c (cell-of i)))
          (vector-set! cmass c (+ (vector-ref cmass c) 1.0))
          (vector-set! ccx c (+ (vector-ref ccx c) (vector-ref px i)))
          (vector-set! ccy c (+ (vector-ref ccy c) (vector-ref py i)))
          (vector-set! ccz c (+ (vector-ref ccz c) (vector-ref pz i)))
          (vector-set! members c (cons i (vector-ref members c)))
          (loop (+ i 1)))
        'done)))

(define (normalize-centroids)
  (let loop ((c 0))
    (if (< c ncells)
        (begin
          (if (> (vector-ref cmass c) 0.0)
              (begin
                (vector-set! ccx c (/ (vector-ref ccx c) (vector-ref cmass c)))
                (vector-set! ccy c (/ (vector-ref ccy c) (vector-ref cmass c)))
                (vector-set! ccz c (/ (vector-ref ccz c) (vector-ref cmass c))))
              'empty)
          (loop (+ c 1)))
        'done)))

(define (accum-pair i dx dy dz m)
  (let ((r2 (+ (+ (* dx dx) (* dy dy)) (+ (* dz dz) eps))))
    (let ((inv (/ m (* r2 (sqrt r2)))))
      (vector-set! ax i (+ (vector-ref ax i) (* dx inv)))
      (vector-set! ay i (+ (vector-ref ay i) (* dy inv)))
      (vector-set! az i (+ (vector-ref az i) (* dz inv))))))

(define (far-field i own)
  (let loop ((c 0))
    (if (< c ncells)
        (begin
          (if (if (= c own) #f (> (vector-ref cmass c) 0.0))
              (accum-pair i
                          (- (vector-ref ccx c) (vector-ref px i))
                          (- (vector-ref ccy c) (vector-ref py i))
                          (- (vector-ref ccz c) (vector-ref pz i))
                          (vector-ref cmass c))
              'skip)
          (loop (+ c 1)))
        'done)))

(define (near-field i own)
  (let loop ((js (vector-ref members own)))
    (if (null? js)
        'done
        (begin
          (if (= (car js) i) 'self
              (accum-pair i
                          (- (vector-ref px (car js)) (vector-ref px i))
                          (- (vector-ref py (car js)) (vector-ref py i))
                          (- (vector-ref pz (car js)) (vector-ref pz i))
                          1.0))
          (loop (cdr js))))))

(define (accelerations)
  (let loop ((i 0))
    (if (< i nb)
        (let ((own (cell-of i)))
          (vector-set! ax i 0.0) (vector-set! ay i 0.0) (vector-set! az i 0.0)
          (far-field i own)
          (near-field i own)
          (loop (+ i 1)))
        'done)))

(define (integrate)
  (let loop ((i 0))
    (if (< i nb)
        (begin
          (vector-set! vx i (+ (vector-ref vx i) (* (vector-ref ax i) dt)))
          (vector-set! vy i (+ (vector-ref vy i) (* (vector-ref ay i) dt)))
          (vector-set! vz i (+ (vector-ref vz i) (* (vector-ref az i) dt)))
          (vector-set! px i (+ (vector-ref px i) (* (vector-ref vx i) dt)))
          (vector-set! py i (+ (vector-ref py i) (* (vector-ref vy i) dt)))
          (vector-set! pz i (+ (vector-ref pz i) (* (vector-ref vz i) dt)))
          (loop (+ i 1)))
        'done)))

(define (energy-proxy)
  (let loop ((i 0) (acc 0.0))
    (if (= i nb) acc
        (loop (+ i 1)
              (+ acc (+ (abs (vector-ref vx i))
                        (+ (abs (vector-ref vy i)) (abs (vector-ref vz i)))))))))

(init)
(let loop ((s 0))
  (if (< s nsteps)
      (begin
        (clear-cells)
        (assign-cells)
        (normalize-centroids)
        (accelerations)
        (integrate)
        (loop (+ s 1)))
      'done))
(> (energy-proxy) 0.0)
"#
    )
}

// ---------------------------------------------------------------------
// rewrite (gambit analog)
// ---------------------------------------------------------------------

fn gen_poly(rng: &mut Lcg, depth: u32) -> String {
    if depth == 0 || rng.below(5) == 0 {
        return match rng.below(4) {
            0 => "x".to_string(),
            1 => "y".to_string(),
            2 => "0".to_string(),
            _ => format!("{}", rng.below(9)),
        };
    }
    let op = ["+", "*", "-"][rng.below(3) as usize];
    format!(
        "({op} {} {})",
        gen_poly(rng, depth - 1),
        gen_poly(rng, depth - 1)
    )
}

/// The gambit analog: a pattern-matching source-to-source optimizer. It
/// repeatedly differentiates and simplifies a corpus of polynomial
/// expressions, memoizing simplified subtrees in an address-hashed table
/// and retaining every optimized tree — long-lived dynamic blocks, the
/// behavior §7 observes in gambit.
pub(crate) fn rewrite_source(scale: u32) -> String {
    let mut rng = Lcg::new(0xBEEF);
    let mut corpus = String::new();
    for _ in 0..24 {
        corpus.push_str(&gen_poly(&mut rng, 5));
        corpus.push_str("\n    ");
    }
    let rounds = 20 * scale;
    let derivs = 4;
    format!(
        r#"
;; rewrite: algebraic simplifier + symbolic differentiation (gambit analog).
(define corpus '({corpus}))
(define rounds {rounds})
(define deriv-depth {derivs})

(define (binary op a b) (list op a b))

;; One bottom-up rewrite of an already-simplified node.
(define (simplify-node e)
  (let ((op (car e)) (a (cadr e)) (b (caddr e)))
    (cond ((if (number? a) (number? b) #f)
           (cond ((eq? op '+) (+ a b))
                 ((eq? op '-) (- a b))
                 (else (* a b))))
          ((eq? op '+)
           (cond ((equal? a 0) b)
                 ((equal? b 0) a)
                 ((equal? a b) (binary '* 2 a))
                 (else e)))
          ((eq? op '-)
           (cond ((equal? b 0) a)
                 ((equal? a b) 0)
                 (else e)))
          (else ; '*
           (cond ((equal? a 0) 0)
                 ((equal? b 0) 0)
                 ((equal? a 1) b)
                 ((equal? b 1) a)
                 (else e))))))

;; Memoized bottom-up simplification; the memo table is keyed by subtree
;; identity (addresses), so it rehashes after every collection. A fresh
;; table serves each optimization round (one "compilation unit").
(define memo (make-table))
(define (simp e)
  (if (pair? e)
      (let ((m (table-ref memo e #f)))
        (if m m
            (let ((r (simplify-node
                      (binary (car e) (simp (cadr e)) (simp (caddr e))))))
              (table-set! memo e r)
              r)))
      e))

(define (deriv e x)
  (cond ((number? e) 0)
        ((symbol? e) (if (eq? e x) 1 0))
        ((eq? (car e) '+) (binary '+ (deriv (cadr e) x) (deriv (caddr e) x)))
        ((eq? (car e) '-) (binary '- (deriv (cadr e) x) (deriv (caddr e) x)))
        (else ; product rule
         (binary '+
                 (binary '* (deriv (cadr e) x) (caddr e))
                 (binary '* (cadr e) (deriv (caddr e) x))))))

(define (tree-size e)
  (if (pair? e)
      (+ 1 (+ (tree-size (cadr e)) (tree-size (caddr e))))
      1))

;; Optimize the whole corpus `rounds` times, keeping every result chain
;; alive (long-lived term graphs).
(define results '())
(define (optimize e)
  (let loop ((d 0) (e e) (chain '()))
    (if (= d deriv-depth)
        (begin (set! results (cons chain results)) e)
        (let ((next (simp (deriv e 'x))))
          (loop (+ d 1) next (cons next chain))))))

(let loop ((r 0) (checksum 0))
  (if (= r rounds)
      (list checksum (length results))
      (begin
        (set! memo (make-table))
        (loop (+ r 1)
              (fold-left (lambda (acc e) (+ acc (tree-size (optimize e))))
                         checksum corpus)))))
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_generation_is_deterministic() {
        assert_eq!(gen_corpus(5, 4, 42), gen_corpus(5, 4, 42));
        assert_ne!(gen_corpus(5, 4, 42), gen_corpus(5, 4, 43));
    }

    #[test]
    fn sources_are_parameterized_by_scale() {
        assert_ne!(compile_source(1), compile_source(2));
        assert_ne!(prove_source(1), prove_source(3));
        assert_ne!(lambda_source(1), lambda_source(2));
        assert_ne!(nbody_source(1), nbody_source(2));
        assert_ne!(rewrite_source(1), rewrite_source(2));
    }
}
