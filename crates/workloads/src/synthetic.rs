//! Native synthetic reference-stream generators.
//!
//! These produce the idealized memory behaviors the paper's §7 analysis
//! describes, without running the VM — handy for fast unit tests of the
//! cache simulator and analyses, and for microbenchmarks that isolate one
//! behavior:
//!
//! * [`one_cycle_sweep`] — pure linear allocation of short-lived objects:
//!   the "allocation wave". Every dynamic block is a one-cycle block.
//! * [`busy_blocks`] — a handful of hot static blocks (the stack and
//!   runtime vector of §7) over a background of linear allocation.
//! * [`thrash_pair`] — two busy blocks that collide in a given cache and
//!   are referenced in alternation: the §7 worst case.
//! * [`monotone_growth`] — a live structure that grows without bound and
//!   is rescanned periodically (the lp behavior).

use cachegc_trace::{Access, Context, TraceSink, DYNAMIC_BASE, STACK_BASE, STATIC_BASE};

const M: Context = Context::Mutator;

/// Linear allocation of `objects` three-word objects; each is initialized,
/// read `reads_per_object` times shortly after allocation, and never
/// touched again.
pub fn one_cycle_sweep<S: TraceSink>(sink: &mut S, objects: u32, reads_per_object: u32) {
    let mut addr = DYNAMIC_BASE;
    let mut recent = [DYNAMIC_BASE; 8];
    for i in 0..objects {
        for w in 0..3 {
            sink.access(Access::alloc_write(addr + 4 * w, M));
        }
        recent[(i % 8) as usize] = addr;
        // Read a recently allocated object (still in the wave's wake).
        for r in 0..reads_per_object {
            let target = recent[((i + r) % 8) as usize];
            sink.access(Access::read(target + 4, M));
            sink.access(Access::read(target + 8, M));
        }
        addr += 12;
    }
}

/// Linear allocation with a set of busy static blocks interleaved: every
/// allocation is surrounded by reads of `busy` hot words (stack slots and
/// a runtime vector), which together take most of the references — the §7
/// "busy block" population.
pub fn busy_blocks<S: TraceSink>(sink: &mut S, objects: u32, busy: u32, refs_per_busy: u32) {
    let mut addr = DYNAMIC_BASE;
    for i in 0..objects {
        for w in 0..3 {
            sink.access(Access::alloc_write(addr + 4 * w, M));
        }
        sink.access(Access::read(addr + 4, M));
        for b in 0..refs_per_busy {
            let which = (i + b) % busy;
            // Half the busy blocks model the stack, half the static area.
            let base = if which.is_multiple_of(2) {
                STACK_BASE
            } else {
                STATIC_BASE
            };
            sink.access(Access::read(base + 64 * (which / 2), M));
            sink.access(Access::write(base + 64 * (which / 2), M));
        }
        addr += 12;
    }
}

/// Two busy memory blocks that map to the same cache block of a
/// direct-mapped cache of `cache_bytes`, referenced in near-perfect
/// alternation for `rounds` rounds: the thrashing worst case of §7.
pub fn thrash_pair<S: TraceSink>(sink: &mut S, cache_bytes: u32, rounds: u32) {
    let a = STATIC_BASE;
    let b = STACK_BASE + (a % cache_bytes).wrapping_sub(STACK_BASE % cache_bytes) % cache_bytes;
    debug_assert_eq!(a % cache_bytes, b % cache_bytes, "same cache index");
    for _ in 0..rounds {
        sink.access(Access::read(a, M));
        sink.access(Access::read(b, M));
    }
}

/// Linear allocation where every `survival`-th object stays live: the live
/// set grows monotonically and is rescanned after each batch, modeling
/// lp's ever-growing structure.
pub fn monotone_growth<S: TraceSink>(sink: &mut S, batches: u32, batch: u32, survival: u32) {
    let mut addr = DYNAMIC_BASE;
    let mut live = Vec::new();
    for _ in 0..batches {
        for i in 0..batch {
            for w in 0..3 {
                sink.access(Access::alloc_write(addr + 4 * w, M));
            }
            if i % survival == 0 {
                live.push(addr);
            }
            addr += 12;
        }
        // Rescan the whole live structure (e.g. computing its size).
        for &obj in &live {
            sink.access(Access::read(obj + 4, M));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::RefCounter;

    #[test]
    fn generators_emit_expected_volumes() {
        let mut c = RefCounter::new();
        one_cycle_sweep(&mut c, 100, 2);
        assert_eq!(c.alloc_writes(), 300);
        assert_eq!(c.total(), 300 + 100 * 2 * 2);

        let mut c = RefCounter::new();
        thrash_pair(&mut c, 1 << 15, 50);
        assert_eq!(c.total(), 100);

        let mut c = RefCounter::new();
        busy_blocks(&mut c, 10, 4, 3);
        assert_eq!(c.total(), 10 * (3 + 1 + 3 * 2));

        let mut c = RefCounter::new();
        monotone_growth(&mut c, 3, 10, 5);
        // 30 objects * 3 writes + rescans of 2, 4, 6 live objects.
        assert_eq!(c.total(), 90 + 2 + 4 + 6);
    }

    #[test]
    fn thrash_pair_addresses_conflict() {
        struct Check(Vec<u32>);
        impl TraceSink for Check {
            fn access(&mut self, a: Access) {
                self.0.push(a.addr);
            }
        }
        let mut c = Check(Vec::new());
        let cache = 1 << 16;
        thrash_pair(&mut c, cache, 1);
        assert_eq!(c.0[0] % cache, c.0[1] % cache);
        assert_ne!(c.0[0], c.0[1]);
    }
}
