//! Reproduce the §7 behavioral analysis for one workload: block
//! populations, lifetimes, one-cycle fraction, busy blocks, and the
//! cache-activity decomposition.
//!
//! ```sh
//! cargo run --release --example block_behavior
//! ```

use cachegc::analysis::{activity, BlockTracker};
use cachegc::gc::NoCollector;
use cachegc::sim::{Cache, CacheConfig};
use cachegc::trace::Region;
use cachegc::workloads::Workload;

fn main() {
    let workload = Workload::Compile.scaled(1);
    println!(
        "workload: {} (the {} analog)",
        workload.workload.name(),
        workload.workload.paper_analog()
    );

    // One pass feeds both a block tracker and a 64 KB cache.
    let sinks = (
        BlockTracker::new(64 << 10, 64),
        Cache::new(CacheConfig::direct_mapped(64 << 10, 64)),
    );
    let out = workload.run(NoCollector::new(), sinks).expect("runs");
    let (tracker, cache) = out.sink;
    let report = tracker.finish();

    println!("\nblock populations (64-byte blocks):");
    println!(
        "  dynamic {}  static {}  stack {}",
        report.dynamic_blocks, report.static_blocks, report.stack_blocks
    );
    println!("\ndynamic-block lifetimes (cumulative):");
    for p in [12u32, 16, 20, 24] {
        println!(
            "  <= 2^{p:<2} references: {:>5.1}%",
            100.0 * report.lifetime_cdf(1 << p)
        );
    }
    println!(
        "  one-cycle in a 64k cache: {:.1}%",
        100.0 * report.one_cycle_fraction()
    );
    println!(
        "  multi-cycle blocks active in <=4 cycles: {:.1}%",
        100.0 * report.multi_cycle_active_le(4)
    );
    println!(
        "  median references per dynamic block: {}",
        report.median_dynamic_refs()
    );

    println!(
        "\nbusy blocks (>= 1/1000 of references): {}",
        report.busy.len()
    );
    for b in report.busy.iter().take(8) {
        let region = match b.region {
            Region::Static => "static",
            Region::Stack => "stack",
            Region::Dynamic => "dynamic",
        };
        println!(
            "  {:#010x} [{region:7}] {:>9} refs ({:.2}% of all)",
            b.addr,
            b.refs,
            100.0 * b.refs as f64 / report.total_refs as f64
        );
    }
    println!(
        "  busy blocks together: {:.1}% of all references",
        100.0 * report.busy_refs_fraction()
    );

    let act = activity(cache.stats());
    println!("\ncache activity @ 64k/64b:");
    println!(
        "  global miss ratio (excl. allocation misses): {:.4}",
        act.global_miss_ratio
    );
    println!(
        "  worst-case hot blocks (local ratio > 0.25): {}",
        act.worst_case_blocks(0.25)
    );
    println!(
        "  best-case hot blocks (local ratio < 0.01):  {}",
        act.best_case_blocks(0.01)
    );
    println!(
        "  largest cumulative-curve jump (thrash signature): {:.4}",
        act.max_cum_jump()
    );
}
