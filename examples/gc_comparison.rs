//! Compare garbage collectors on one workload: no collection (the §5
//! control), an infrequent Cheney semispace collector (§6), an infrequent
//! generational collector, and an *aggressive* cache-sized-nursery
//! generational collector (the strategy the paper argues against).
//!
//! ```sh
//! cargo run --release --example gc_comparison
//! ```

use cachegc::core::{CollectorSpec, ExperimentConfig, GcComparison, FAST, SLOW};
use cachegc::workloads::Workload;

fn main() {
    let scale = 2;
    let mut cfg = ExperimentConfig::quick();
    cfg.cache_sizes = vec![64 << 10, 1 << 20];
    let workload = Workload::Compile.scaled(scale);

    println!(
        "workload: {} (the {} analog), scale {scale}",
        workload.workload.name(),
        workload.workload.paper_analog()
    );
    println!(
        "{:18} {:>6} {:>12} {:>11} {:>11} {:>11} {:>11}",
        "collector", "GCs", "copied (b)", "64k slow", "64k fast", "1m slow", "1m fast"
    );

    let specs = [
        CollectorSpec::Cheney {
            semispace_bytes: 2 << 20,
        },
        CollectorSpec::Generational {
            nursery_bytes: 2 << 20,
            old_bytes: 16 << 20,
        },
        CollectorSpec::Generational {
            nursery_bytes: 64 << 10,
            old_bytes: 16 << 20,
        },
    ];
    for spec in specs {
        let cmp = GcComparison::run(workload, &cfg, spec).expect("runs");
        println!(
            "{:18} {:>6} {:>12} {:>10.2}% {:>10.2}% {:>10.2}% {:>10.2}%",
            spec.name(),
            cmp.collected.gc.collections,
            cmp.collected.gc.bytes_copied,
            100.0 * cmp.gc_overhead(64 << 10, 64, &SLOW),
            100.0 * cmp.gc_overhead(64 << 10, 64, &FAST),
            100.0 * cmp.gc_overhead(1 << 20, 64, &SLOW),
            100.0 * cmp.gc_overhead(1 << 20, 64, &FAST),
        );
    }
    println!();
    println!("(gen/64k+16m is the 'aggressive' collector: nursery sized to the cache.");
    println!(" The paper's claim: it collects too often and copies too much to pay off.)");
}
