//! Quickstart: run a Scheme program on the simulated machine, attach a
//! cache, and compute the paper's cache overhead.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cachegc::gc::NoCollector;
use cachegc::sim::{miss_penalty_cycles, Cache, CacheConfig, MainMemory, FAST, SLOW};
use cachegc::vm::Machine;

const PROGRAM: &str = "
;; Build and sum an association list a few thousand times.
(define (build n)
  (if (zero? n) '() (cons (cons n (* n n)) (build (- n 1)))))
(define (sum-squares alist)
  (fold-left (lambda (acc kv) (+ acc (cdr kv))) 0 alist))
(let loop ((round 0) (total 0))
  (if (= round 1000)
      total
      (loop (+ round 1) (+ total (sum-squares (build 100))))))
";

fn main() {
    // A 64 KB direct-mapped cache with 64-byte blocks and the paper's
    // write-validate policy, fed by every load/store the program makes.
    let cache = Cache::new(CacheConfig::direct_mapped(64 << 10, 64));
    let mut machine = Machine::new(NoCollector::new(), cache);

    let value = machine.run_program(PROGRAM).expect("program runs");
    println!("program result: {}", machine.display_value(value));

    let i_prog = machine.counters().program();
    let stats = machine.sink().stats();
    println!("data references: {}", stats.refs());
    println!("instructions:    {i_prog}");
    println!("block fetches:   {}", stats.fetches());
    println!("allocated bytes: {}", machine.heap().total_allocated());

    // O_cache = M_prog * P / I_prog (paper §5).
    let mem = MainMemory::przybylski();
    for cpu in [&SLOW, &FAST] {
        let p = miss_penalty_cycles(&mem, cpu, 64);
        let overhead = (stats.fetches() * p) as f64 / i_prog as f64;
        println!(
            "{} processor: miss penalty {p} cycles, cache overhead {:.2}%",
            cpu.name,
            100.0 * overhead
        );
    }
}
