//! Run a user-supplied Scheme file on the simulated machine and report
//! what the paper's apparatus sees: references, instructions, allocation,
//! GC activity, and cache overheads.
//!
//! ```sh
//! echo '(define (f n) (if (zero? n) 0 (+ n (f (- n 1))))) (display (f 1000))' > /tmp/p.scm
//! cargo run --release --example run_scheme -- /tmp/p.scm
//! cargo run --release --example run_scheme -- /tmp/p.scm --gc cheney:2m
//! cargo run --release --example run_scheme -- /tmp/p.scm --gc gen:1m+16m
//! ```

use std::process::ExitCode;

use cachegc::core::{miss_penalty_cycles, Cache, CacheConfig, MainMemory, FAST, SLOW};
use cachegc::gc::{CheneyCollector, Collector, GenerationalCollector, NoCollector};
use cachegc::trace::Fanout;
use cachegc::vm::Machine;

fn parse_bytes(s: &str) -> Option<u32> {
    let (num, mult) = match s.as_bytes().last()? {
        b'k' => (&s[..s.len() - 1], 1u32 << 10),
        b'm' => (&s[..s.len() - 1], 1 << 20),
        _ => (s, 1),
    };
    num.parse::<u32>().ok()?.checked_mul(mult)
}

fn caches() -> Fanout<Cache> {
    Fanout::new(
        [32 << 10, 64 << 10, 256 << 10, 1 << 20]
            .into_iter()
            .map(|size| Cache::new(CacheConfig::direct_mapped(size, 64)))
            .collect(),
    )
}

fn report<C: Collector>(mut machine: Machine<C, Fanout<Cache>>, src: &str) -> ExitCode {
    let result = match machine.run_program(src) {
        Ok(v) => machine.display_value(v),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !machine.output().is_empty() {
        println!("--- program output ---");
        println!("{}", machine.output());
        println!("----------------------");
    }
    println!("result:       {result}");
    let stats = machine.stats();
    println!(
        "instructions: {} (I_gc {}, ΔI_prog {})",
        stats.instructions.program(),
        stats.instructions.collector(),
        stats.instructions.gc_induced()
    );
    println!("allocated:    {} bytes", stats.allocated_bytes);
    println!(
        "collections:  {} ({} minor, {} major), {} bytes copied",
        stats.gc.collections,
        stats.gc.minor_collections,
        stats.gc.major_collections,
        stats.gc.bytes_copied
    );
    println!("\ncache overheads (64-byte blocks, write-validate):");
    let mem = MainMemory::przybylski();
    for cache in machine.sink().sinks() {
        let s = cache.stats();
        print!(
            "  {:>8}: {:>10} refs, {:>8} fetches",
            cache.config().to_string(),
            s.refs(),
            s.fetches()
        );
        for cpu in [&SLOW, &FAST] {
            let p = miss_penalty_cycles(&mem, cpu, 64);
            print!(
                "  {}={:.2}%",
                cpu.name,
                100.0 * (s.fetches() * p) as f64 / stats.instructions.program() as f64
            );
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: run_scheme <file.scm> [--gc none|cheney:<size>|gen:<nursery>+<old>]");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gc_spec = args
        .iter()
        .position(|a| a == "--gc")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("none");

    if gc_spec == "none" {
        report(Machine::new(NoCollector::new(), caches()), &src)
    } else if let Some(size) = gc_spec.strip_prefix("cheney:").and_then(parse_bytes) {
        report(Machine::new(CheneyCollector::new(size), caches()), &src)
    } else if let Some((n, o)) = gc_spec.strip_prefix("gen:").and_then(|rest| {
        let (n, o) = rest.split_once('+')?;
        Some((parse_bytes(n)?, parse_bytes(o)?))
    }) {
        report(
            Machine::new(GenerationalCollector::new(n, o), caches()),
            &src,
        )
    } else {
        eprintln!("bad --gc spec {gc_spec:?}: use none, cheney:<size>, or gen:<nursery>+<old>");
        ExitCode::FAILURE
    }
}
