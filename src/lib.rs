//! # cachegc — Cache Performance of Garbage-Collected Programs
//!
//! A from-scratch reproduction of Mark B. Reinhold's PLDI 1994 study
//! *Cache Performance of Garbage-Collected Programs*: a small Scheme system
//! with linear heap allocation, a family of garbage collectors, a
//! trace-driven direct-mapped cache simulator with the paper's timing model,
//! and the behavioral analyses of the paper's §7.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`trace`] — data-reference events, sinks, instruction accounting.
//! * [`sim`] — the cache simulator and the Przybylski timing model.
//! * [`heap`] — the tagged object model, memory spaces, linear allocator.
//! * [`gc`] — Cheney semispace and generational compacting collectors.
//! * [`vm`] — the Scheme reader, bytecode compiler, and virtual machine.
//! * [`workloads`] — the five test programs and synthetic trace generators.
//! * [`analysis`] — block lifetimes, allocation cycles, cache activity.
//! * [`core`] — the experiment harness: overheads, runs, report tables.
//! * [`telemetry`] — counters, phase timers, and engine observability.
//!
//! ## Quickstart
//!
//! ```
//! use cachegc::core::{ExperimentConfig, run_control};
//! use cachegc::workloads::Workload;
//!
//! # fn main() -> Result<(), cachegc::vm::VmError> {
//! let report = run_control(
//!     Workload::Rewrite.scaled(1),
//!     &ExperimentConfig::quick(),
//! )?;
//! assert!(report.refs > 0);
//! # Ok(())
//! # }
//! ```

pub mod testkit;

pub use cachegc_analysis as analysis;
pub use cachegc_core as core;
pub use cachegc_gc as gc;
pub use cachegc_heap as heap;
pub use cachegc_sim as sim;
pub use cachegc_telemetry as telemetry;
pub use cachegc_trace as trace;
pub use cachegc_vm as vm;
pub use cachegc_workloads as workloads;
