//! Minimal deterministic property-testing support.
//!
//! The workspace pins no external registry crates (builds must succeed in
//! hermetic, offline environments), so this module provides the small slice
//! of `proptest`/`rand` functionality the test suite actually needs: a fast
//! seedable PRNG and a driver that runs a property over many generated
//! cases, reporting the failing case's seed so it can be replayed.
//!
//! Everything is deterministic: the same property name always sees the same
//! sequence of seeds, so failures reproduce without any environment setup.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A SplitMix64 PRNG: tiny, fast, and statistically solid for test-case
/// generation (it is the seeding generator recommended by the xoshiro
/// authors). Not for cryptography.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A boolean with probability 1/2.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % u64::from(hi - lo)) as u32
    }

    /// Uniform in `[lo, hi)` for usize ranges. Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform in `[lo, hi)` for i32 ranges. Panics if the range is empty.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (i64::from(hi) - i64::from(lo)) as u64;
        (i64::from(lo) + (self.next_u64() % span) as i64) as i32
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

/// Run `property` over `cases` generated cases.
///
/// Each case gets an `Rng` seeded from the property `name` and the case
/// index, so runs are deterministic per property and independent across
/// properties. On failure the case index and seed are reported; replay with
/// [`replay`].
///
/// # Panics
///
/// Re-panics after reporting if any case fails.
pub fn check(name: &str, cases: u64, mut property: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = seed_for(name, case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            property(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} (seed {seed:#x}); \
                 replay with testkit::replay(\"{name}\", {case}, ..)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Re-run a single case of a property, by name and case index.
pub fn replay(name: &str, case: u64, mut property: impl FnMut(&mut Rng)) {
    let mut rng = Rng::new(seed_for(name, case));
    property(&mut rng);
}

/// FNV-1a over the property name, mixed with the case index.
fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.range_u32(10, 20);
            assert!((10..20).contains(&v));
            let w = rng.range_i32(-5, 5);
            assert!((-5..5).contains(&w));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            // Extreme spans must not overflow the lo + offset arithmetic.
            rng.range_i32(i32::MIN, i32::MAX);
            rng.range_u32(0, u32::MAX);
        }
    }

    #[test]
    fn check_runs_all_cases() {
        let mut n = 0;
        check("counts", 17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn distinct_names_get_distinct_seeds() {
        assert_ne!(seed_for("a", 0), seed_for("b", 0));
        assert_ne!(seed_for("a", 0), seed_for("a", 1));
    }
}
