//! Property tests for the golden-results harness: the CSV round trip is a
//! fixed point over arbitrary tables, and the zero-tolerance diff accepts
//! identical tables while pinpointing a single mutated cell.

use cachegc::core::report::{Cell, Table};
use cachegc::testkit::{self, Rng};
use cachegc_bench::golden::{diff_tables, Drift, Tolerance};

/// Text payloads that stress the CSV quoting rules: commas, quotes,
/// newlines, CRLF, leading/trailing space, and strings that *look* like
/// numbers (which must stay Text when quoted, and may legitimately
/// re-materialize as numeric cells when not).
const TEXTS: &[&str] = &[
    "plain",
    "comma, inside",
    "say \"hi\"",
    "line\nbreak",
    "crlf\r\nboth",
    " padded ",
    "",
    "compile",
    "64k",
];

fn arbitrary_cell(rng: &mut Rng) -> Cell {
    match rng.range_u32(0, 8) {
        0 => Cell::text(*rng.choose(TEXTS)),
        1 => Cell::Int(i64::from(rng.range_i32(i32::MIN, i32::MAX))),
        2 => Cell::Count(rng.next_u64()),
        3 => Cell::Bytes(rng.next_u64() >> rng.range_u32(0, 40)),
        4 => Cell::Float(rng.range_f64(-1e6, 1e6), rng.range_usize(0, 9)),
        5 => Cell::Float(
            *rng.choose(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]),
            3,
        ),
        6 => Cell::Pct(rng.range_f64(-2.0, 2.0)),
        _ => Cell::Missing,
    }
}

fn arbitrary_table(rng: &mut Rng) -> Table {
    let ncols = rng.range_usize(1, 6);
    let cols: Vec<String> = (0..ncols).map(|c| format!("col{c}")).collect();
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = Table::new("prop", &cols);
    for _ in 0..rng.range_usize(0, 8) {
        t.row((0..ncols).map(|_| arbitrary_cell(rng)).collect());
    }
    t
}

/// write_csv → read_csv → write_csv reproduces the bytes of the first
/// write: the reader may collapse cell variants (Bytes → Count,
/// Pct → Float), but never in a way the serialization can see.
#[test]
fn csv_round_trip_is_a_fixed_point() {
    testkit::check("csv_round_trip_is_a_fixed_point", 200, |rng| {
        let table = arbitrary_table(rng);
        let first = table.to_csv();
        let back = Table::from_csv(table.name(), &first).expect("own CSV parses");
        assert_eq!(back.to_csv(), first, "round trip moved the bytes");
        // And it is idempotent from there on.
        let again = Table::from_csv(back.name(), &back.to_csv()).expect("parses");
        assert_eq!(again.to_csv(), first);
    });
}

/// A table read back from its own CSV diffs clean against the live table
/// even at zero tolerance — the golden workflow's steady state.
#[test]
fn zero_tolerance_diff_accepts_identical_tables() {
    testkit::check("zero_tolerance_diff_accepts_identical_tables", 200, |rng| {
        let live = arbitrary_table(rng);
        let golden = Table::from_csv(live.name(), &live.to_csv()).expect("parses");
        let drifts = diff_tables(&golden, &live, &Tolerance::EXACT);
        assert!(drifts.is_empty(), "spurious drift: {drifts:?}");
    });
}

/// Mutating exactly one cell yields exactly one drift, naming that cell's
/// row and column.
#[test]
fn single_mutation_is_pinpointed() {
    testkit::check("single_mutation_is_pinpointed", 200, |rng| {
        let mut live = arbitrary_table(rng);
        if live.is_empty() {
            live.row(vec![Cell::Count(1); live.columns().len()]);
        }
        let golden = Table::from_csv(live.name(), &live.to_csv()).expect("parses");
        let row = rng.range_usize(0, live.len());
        let col = rng.range_usize(0, live.columns().len());
        // A replacement no generated cell serializes to, so the mutation
        // is visible no matter what it overwrote.
        live.set_cell(row, col, Cell::text("MUTANT"));
        let drifts = diff_tables(&golden, &live, &Tolerance::EXACT);
        assert_eq!(drifts.len(), 1, "expected one drift, got {drifts:?}");
        match &drifts[0] {
            Drift::Cell {
                row: r,
                column,
                actual,
                ..
            } => {
                assert_eq!(*r, row);
                assert_eq!(column, &live.columns()[col]);
                assert_eq!(actual, "MUTANT");
            }
            other => panic!("expected a cell drift, got {other:?}"),
        }
    });
}
