//! End-to-end integration tests: full pipeline runs (workload → VM →
//! trace → caches → analyses) checking the paper's qualitative claims at
//! smoke scale.

use cachegc::analysis::{activity, BlockTracker, SweepPlot};
use cachegc::core::{
    run_collected, run_control, CollectorSpec, ExperimentConfig, GcComparison, FAST, SLOW,
};
use cachegc::gc::NoCollector;
use cachegc::sim::CacheConfig;
use cachegc::trace::Context;
use cachegc::workloads::Workload;

fn quick() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.cache_sizes = vec![32 << 10, 128 << 10, 1 << 20];
    cfg
}

#[test]
fn control_overheads_improve_with_cache_size_for_every_workload() {
    let cfg = quick();
    for w in Workload::ALL {
        let r = run_control(w.scaled(1), &cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let mut prev = f64::INFINITY;
        for &size in &cfg.cache_sizes {
            let cell = r.cell(size, 64).unwrap();
            let o = r.cache_overhead(cell, &FAST);
            assert!(o >= 0.0 && o <= prev + 1e-9, "{}: {size} -> {o}", w.name());
            prev = o;
        }
        // The fast processor always suffers more than the slow one.
        let cell = r.cell(32 << 10, 64).unwrap();
        assert!(r.cache_overhead(cell, &FAST) > r.cache_overhead(cell, &SLOW));
    }
}

#[test]
fn slow_processor_overhead_is_small_in_a_large_cache() {
    // The §5 headline: with write-validate, overheads under 5% are
    // attainable; the slow processor gets there easily.
    let cfg = quick();
    for w in Workload::ALL {
        let r = run_control(w.scaled(1), &cfg).unwrap();
        let cell = r.cell(1 << 20, 64).unwrap();
        let o = r.cache_overhead(cell, &SLOW);
        assert!(o < 0.05, "{}: slow/1m/64b = {:.3}", w.name(), o);
    }
}

#[test]
fn one_cycle_blocks_dominate_every_workload() {
    // §7: "at least half, and often more than eighty percent, of all
    // dynamic blocks are one-cycle blocks" in a 64 KB cache.
    for w in Workload::ALL {
        let tracker = BlockTracker::new(64 << 10, 64);
        let out = w.scaled(1).run(NoCollector::new(), tracker).unwrap();
        let report = out.sink.finish();
        assert!(
            report.one_cycle_fraction() >= 0.5,
            "{}: one-cycle fraction {:.2}",
            w.name(),
            report.one_cycle_fraction()
        );
        // Busy blocks are few yet take most references.
        assert!(report.busy.len() < 1000, "{}", w.name());
        assert!(report.busy_refs_fraction() > 0.5, "{}", w.name());
    }
}

#[test]
fn collected_results_equal_uncollected_results() {
    let cfg = ExperimentConfig::quick();
    for w in [Workload::Compile, Workload::Lambda] {
        let base = w
            .scaled(1)
            .run(NoCollector::new(), cachegc::trace::NullSink)
            .unwrap();
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 2 << 20,
        };
        let coll = run_collected(w.scaled(1), &cfg, spec).unwrap();
        // Same program, (almost) the same instruction count — hash-chain
        // lengths can shift slightly after a rehash — and the same answer.
        let (a, b) = (base.stats.instructions.program() as f64, coll.i_prog as f64);
        assert!((a - b).abs() / a < 1e-3, "{}: I_prog {a} vs {b}", w.name());
        let rerun = w
            .scaled(1)
            .run(
                cachegc::gc::CheneyCollector::new(2 << 20),
                cachegc::trace::NullSink,
            )
            .unwrap();
        assert_eq!(base.result, rerun.result, "{}", w.name());
    }
}

#[test]
fn gc_attribution_is_consistent() {
    let cfg = ExperimentConfig::quick();
    let spec = CollectorSpec::Cheney {
        semispace_bytes: 1 << 20,
    };
    let cmp = GcComparison::run(Workload::Compile.scaled(1), &cfg, spec).unwrap();
    assert!(cmp.collected.gc.collections > 0);
    for cell in &cmp.collected.cells {
        assert_eq!(cell.m_prog, cell.stats.fetches_by(Context::Mutator));
        assert_eq!(cell.m_gc, cell.stats.fetches_by(Context::Collector));
        assert!(cell.m_gc > 0, "collector touched memory");
    }
    let o = cmp.gc_overhead(32 << 10, 64, &FAST);
    assert!(o.is_finite() && o.abs() < 10.0, "O_gc = {o}");
}

#[test]
fn generational_beats_cheney_on_growing_live_data() {
    // The §6 lp story at smoke scale.
    let mut cfg = ExperimentConfig::quick();
    cfg.cache_sizes = vec![64 << 10];
    let w = Workload::Lambda.scaled(1);
    let cheney = GcComparison::run(
        w,
        &cfg,
        CollectorSpec::Cheney {
            semispace_bytes: 1 << 20,
        },
    )
    .unwrap();
    let gen = GcComparison::run(
        w,
        &cfg,
        CollectorSpec::Generational {
            nursery_bytes: 1 << 20,
            old_bytes: 16 << 20,
        },
    )
    .unwrap();
    assert!(
        gen.collected.gc.bytes_copied < cheney.collected.gc.bytes_copied,
        "generational copies less: {} vs {}",
        gen.collected.gc.bytes_copied,
        cheney.collected.gc.bytes_copied
    );
    assert!(gen.gc_overhead(64 << 10, 64, &FAST) < cheney.gc_overhead(64 << 10, 64, &FAST));
}

#[test]
fn aggressive_nursery_promotes_more_than_infrequent() {
    let mut cfg = ExperimentConfig::quick();
    cfg.cache_sizes = vec![64 << 10];
    let w = Workload::Compile.scaled(1);
    let small = run_collected(
        w,
        &cfg,
        CollectorSpec::Generational {
            nursery_bytes: 64 << 10,
            old_bytes: 16 << 20,
        },
    )
    .unwrap();
    let large = run_collected(
        w,
        &cfg,
        CollectorSpec::Generational {
            nursery_bytes: 2 << 20,
            old_bytes: 16 << 20,
        },
    )
    .unwrap();
    assert!(small.gc.minor_collections > 4 * large.gc.minor_collections.max(1));
    assert!(small.gc.bytes_promoted > large.gc.bytes_promoted);
}

#[test]
fn sweep_plot_shows_the_allocation_wave() {
    let plot = SweepPlot::new(CacheConfig::direct_mapped(64 << 10, 64), 1024);
    let out = Workload::Compile
        .scaled(1)
        .run(NoCollector::new(), plot)
        .unwrap();
    let plot = out.sink;
    assert!(plot.width() > 100, "plot has time extent");
    // The wave is sparse: misses concentrate on the advancing front, not
    // the whole cache.
    let f = plot.fraction_of_cells_with_dots();
    assert!(f > 0.001 && f < 0.5, "dot density {f}");
}

#[test]
fn cache_activity_best_cases_prevail() {
    // §7: the most-referenced cache blocks end up mostly well-behaved and
    // pull the global miss ratio down below the mid-curve level.
    let cache = cachegc::sim::Cache::new(CacheConfig::direct_mapped(64 << 10, 64));
    let out = Workload::Compile
        .scaled(1)
        .run(NoCollector::new(), cache)
        .unwrap();
    let act = activity(out.sink.stats());
    assert!(
        act.global_miss_ratio < 0.05,
        "global ratio {}",
        act.global_miss_ratio
    );
    assert!(act.best_case_blocks(0.01) > act.worst_case_blocks(0.25));
}

#[test]
fn instruction_counts_are_in_the_papers_regime() {
    // §3: roughly 0.26-0.29 data references per instruction.
    for w in Workload::ALL {
        let out = w
            .scaled(1)
            .run(NoCollector::new(), cachegc::trace::RefCounter::new())
            .unwrap();
        let ratio = out.sink.total() as f64 / out.stats.instructions.program() as f64;
        assert!(
            (0.2..0.45).contains(&ratio),
            "{}: refs/insns = {ratio:.3}",
            w.name()
        );
    }
}
