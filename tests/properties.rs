//! Property-based tests of the core data structures and invariants.

use std::collections::HashMap;

use proptest::prelude::*;

use cachegc::gc::{CheneyCollector, Collector, GenerationalCollector, NoCollector, Roots};
use cachegc::heap::{Header, Heap, HeapConfig, ObjKind, Value};
use cachegc::sim::{Cache, CacheConfig, SetAssocCache};
use cachegc::trace::{Access, AccessKind, Context, Counters, NullSink, TraceSink, DYNAMIC_BASE};
use cachegc::vm::{read, Machine, Sexp};

// ---------------------------------------------------------------------
// Cache simulator vs an independent reference model
// ---------------------------------------------------------------------

/// A deliberately naive direct-mapped write-validate cache: a hash map
/// from cache-block index to (tag, per-word valid set). No bit tricks —
/// an independent oracle for the optimized simulator.
struct RefModel {
    size: u32,
    block: u32,
    blocks: HashMap<u32, (u32, Vec<bool>)>,
    fetches: u64,
    misses: u64,
}

impl RefModel {
    fn new(size: u32, block: u32) -> Self {
        RefModel { size, block, blocks: HashMap::new(), fetches: 0, misses: 0 }
    }

    fn access(&mut self, a: Access) {
        let block_addr = a.addr / self.block;
        let index = block_addr % (self.size / self.block);
        let tag = block_addr / (self.size / self.block);
        let word = ((a.addr % self.block) / 4) as usize;
        let words = (self.block / 4) as usize;
        let entry = self.blocks.get_mut(&index);
        match a.kind {
            AccessKind::Read => match entry {
                Some((t, valid)) if *t == tag && valid[word] => {}
                Some((t, valid)) if *t == tag => {
                    valid.iter_mut().for_each(|v| *v = true);
                    let _ = valid;
                    self.fetches += 1;
                    self.misses += 1;
                }
                _ => {
                    self.blocks.insert(index, (tag, vec![true; words]));
                    self.fetches += 1;
                    self.misses += 1;
                }
            },
            AccessKind::Write => match entry {
                Some((t, valid)) if *t == tag => valid[word] = true,
                _ => {
                    let mut valid = vec![false; words];
                    valid[word] = true;
                    self.blocks.insert(index, (tag, valid));
                    self.misses += 1;
                }
            },
        }
    }
}

fn access_strategy() -> impl Strategy<Value = Access> {
    // Addresses in a window that wraps several cache sizes.
    (0u32..1 << 18, any::<bool>()).prop_map(|(off, write)| {
        let addr = DYNAMIC_BASE + off * 4;
        if write {
            Access::write(addr, Context::Mutator)
        } else {
            Access::read(addr, Context::Mutator)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_model(
        accesses in prop::collection::vec(access_strategy(), 1..2000),
        size_log in 15u32..19,
        block_log in 4u32..8,
    ) {
        let (size, block) = (1 << size_log, 1 << block_log);
        let mut cache = Cache::new(CacheConfig::direct_mapped(size, block));
        let mut model = RefModel::new(size, block);
        for &a in &accesses {
            cache.access(a);
            model.access(a);
        }
        prop_assert_eq!(cache.stats().fetches(), model.fetches);
        prop_assert_eq!(cache.stats().misses(), model.misses);
    }

    #[test]
    fn one_way_set_assoc_equals_direct_mapped(
        accesses in prop::collection::vec(access_strategy(), 1..1500),
    ) {
        let cfg = CacheConfig::direct_mapped(1 << 16, 64);
        let mut dm = Cache::new(cfg);
        let mut sa = SetAssocCache::new(cfg.with_assoc(1));
        for &a in &accesses {
            dm.access(a);
            sa.access(a);
        }
        prop_assert_eq!(dm.stats().fetches(), sa.stats().fetches());
        prop_assert_eq!(dm.stats().misses(), sa.stats().misses());
        prop_assert_eq!(dm.stats().writebacks(), sa.stats().writebacks());
    }

    #[test]
    fn higher_associativity_never_increases_capacity_misses_for_sequential(
        n in 1u32..512,
    ) {
        // Sequential sweeps are LRU-friendly: 2-way must not fetch more
        // than 1-way on a repeated linear scan that fits in the cache.
        let cfg = CacheConfig::direct_mapped(1 << 16, 64);
        let mut one = SetAssocCache::new(cfg.with_assoc(1));
        let mut two = SetAssocCache::new(cfg.with_assoc(2));
        for _ in 0..3 {
            for i in 0..n {
                let a = Access::read(DYNAMIC_BASE + i * 64, Context::Mutator);
                one.access(a);
                two.access(a);
            }
        }
        prop_assert!(two.stats().fetches() <= one.stats().fetches());
    }
}

// ---------------------------------------------------------------------
// Tagged values and headers
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn fixnum_roundtrip(n in -(1i32 << 29)..(1i32 << 29)) {
        prop_assert_eq!(Value::fixnum(n).as_fixnum(), n);
    }

    #[test]
    fn pointer_roundtrip(addr in (DYNAMIC_BASE / 4..0x4000_0000u32 / 4).prop_map(|w| w * 4)) {
        let v = Value::ptr(addr);
        prop_assert!(v.is_ptr() && !v.is_fixnum());
        prop_assert_eq!(v.addr(), addr);
    }

    #[test]
    fn header_roundtrip(len in 0u32..Header::MAX_LEN, kind_idx in 0usize..8) {
        let kind = ObjKind::ALL[kind_idx];
        let h = Header::from_bits(Header::new(kind, len).bits());
        prop_assert_eq!(h.kind(), kind);
        prop_assert_eq!(h.len(), len);
        // Headers are never valid first-class values.
        let v = Value::from_bits(h.bits());
        prop_assert!(!v.is_ptr() && !v.is_fixnum());
    }
}

// ---------------------------------------------------------------------
// Collectors preserve the reachable graph
// ---------------------------------------------------------------------

/// Build a random object graph; object i may point at objects j < i.
#[derive(Debug, Clone)]
struct GraphSpec {
    nodes: Vec<Vec<Option<usize>>>, // per node: payload slots (None = fixnum)
    roots: Vec<usize>,
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    prop::collection::vec(prop::collection::vec(prop::option::of(any::<prop::sample::Index>()), 1..4), 1..60)
        .prop_flat_map(|raw| {
            let n = raw.len();
            (Just(raw), prop::collection::vec(0..n, 1..4))
        })
        .prop_map(|(raw, roots)| {
            let nodes = raw
                .iter()
                .enumerate()
                .map(|(i, slots)| {
                    slots
                        .iter()
                        .map(|s| s.as_ref().and_then(|idx| if i == 0 { None } else { Some(idx.index(i)) }))
                        .collect()
                })
                .collect();
            GraphSpec { nodes, roots }
        })
}

fn build_graph(heap: &mut Heap, spec: &GraphSpec) -> Vec<Value> {
    let mut sink = NullSink;
    let mut objs: Vec<Value> = Vec::new();
    for (i, slots) in spec.nodes.iter().enumerate() {
        let payload: Vec<Value> = slots
            .iter()
            .map(|s| match s {
                Some(j) => objs[*j],
                None => Value::fixnum(i as i32),
            })
            .collect();
        let obj = heap.alloc(ObjKind::Vector, &payload, Context::Mutator, &mut sink).unwrap();
        objs.push(obj);
    }
    spec.roots.iter().map(|&r| objs[r]).collect()
}

/// A canonical fingerprint of the graph reachable from `roots`:
/// depth-first, with back-edges encoded by discovery index.
fn fingerprint(heap: &Heap, roots: &[Value]) -> Vec<i64> {
    fn go(heap: &Heap, v: Value, seen: &mut HashMap<u32, i64>, out: &mut Vec<i64>) {
        if v.is_fixnum() {
            out.push(v.as_fixnum() as i64);
            return;
        }
        let addr = v.addr();
        if let Some(&id) = seen.get(&addr) {
            out.push(-1000 - id);
            return;
        }
        let id = seen.len() as i64;
        seen.insert(addr, id);
        let h = Header::from_bits(heap.peek(addr));
        out.push(-1 - h.len() as i64);
        for i in 0..h.len() {
            go(heap, Value::from_bits(heap.peek(addr + 4 + 4 * i)), seen, out);
        }
    }
    let mut seen = HashMap::new();
    let mut out = Vec::new();
    for &r in roots {
        go(heap, r, &mut seen, &mut out);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cheney_preserves_reachable_graph(spec in graph_strategy()) {
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 20));
        let mut gc = CheneyCollector::new(1 << 20);
        gc.install(&mut heap);
        let mut roots_v = build_graph(&mut heap, &spec);
        let before = fingerprint(&heap, &roots_v);
        let mut roots = Roots::registers_only(&mut roots_v);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
        let after = fingerprint(&heap, &roots_v);
        prop_assert_eq!(before, after);
        // Compaction: everything live is packed at the bottom; a second
        // collection copies exactly the same number of bytes.
        let live = heap.dynamic_used();
        let copied_once = gc.stats().bytes_copied;
        let mut roots = Roots::registers_only(&mut roots_v);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
        prop_assert_eq!(heap.dynamic_used(), live);
        prop_assert_eq!(gc.stats().bytes_copied - copied_once, live as u64);
    }

    #[test]
    fn generational_preserves_reachable_graph(spec in graph_strategy()) {
        let mut heap = Heap::new(HeapConfig::unbounded());
        let mut gc = GenerationalCollector::new(1 << 16, 1 << 20);
        gc.install(&mut heap);
        let mut roots_v = build_graph(&mut heap, &spec);
        let before = fingerprint(&heap, &roots_v);
        let mut roots = Roots::registers_only(&mut roots_v);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
        prop_assert_eq!(before, fingerprint(&heap, &roots_v));
    }

    #[test]
    fn allocation_is_contiguous(sizes in prop::collection::vec(0u32..20, 1..50)) {
        let mut heap = Heap::new(HeapConfig::unbounded());
        let mut sink = NullSink;
        let mut expected = DYNAMIC_BASE;
        for len in sizes {
            let v = heap.alloc_vector(len, Value::nil(), Context::Mutator, &mut sink).unwrap();
            prop_assert_eq!(v.addr(), expected);
            expected += 4 * (len + 1);
        }
        prop_assert_eq!(heap.dynamic_used(), expected - DYNAMIC_BASE);
    }
}

// ---------------------------------------------------------------------
// Reader / printer and the VM against Rust arithmetic
// ---------------------------------------------------------------------

fn sexp_strategy() -> impl Strategy<Value = Sexp> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9-]{0,8}".prop_map(Sexp::Sym),
        any::<i32>().prop_map(|n| Sexp::Int(n as i64)),
        (-1e9f64..1e9).prop_map(Sexp::Float),
        "[a-zA-Z0-9 ]{0,10}".prop_map(Sexp::Str),
        prop::char::range('a', 'z').prop_map(Sexp::Char),
        any::<bool>().prop_map(Sexp::Bool),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop::collection::vec(inner, 0..6).prop_map(Sexp::List)
    })
}

#[derive(Debug, Clone)]
enum Arith {
    Lit(i32),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn to_scheme(&self) -> String {
        match self {
            Arith::Lit(n) => n.to_string(),
            Arith::Add(a, b) => format!("(+ {} {})", a.to_scheme(), b.to_scheme()),
            Arith::Sub(a, b) => format!("(- {} {})", a.to_scheme(), b.to_scheme()),
            Arith::Mul(a, b) => format!("(* {} {})", a.to_scheme(), b.to_scheme()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            Arith::Lit(n) => *n as i64,
            Arith::Add(a, b) => a.eval() + b.eval(),
            Arith::Sub(a, b) => a.eval() - b.eval(),
            Arith::Mul(a, b) => a.eval() * b.eval(),
        }
    }
}

fn arith_strategy() -> impl Strategy<Value = Arith> {
    let leaf = (-50i32..50).prop_map(Arith::Lit);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reader_printer_roundtrip(sexp in sexp_strategy()) {
        let printed = sexp.to_string();
        let reread = read(&printed).unwrap();
        prop_assert_eq!(reread.len(), 1, "{}", printed);
        prop_assert_eq!(&reread[0], &sexp, "{}", printed);
    }

    #[test]
    fn vm_arithmetic_matches_rust(expr in arith_strategy()) {
        let expected = expr.eval();
        prop_assume!(expected.abs() < (1 << 29)); // stay in fixnum range
        let mut m = Machine::new(NoCollector::new(), NullSink);
        let v = m.run_program(&expr.to_scheme()).unwrap();
        prop_assert_eq!(v.as_fixnum() as i64, expected);
    }

    #[test]
    fn vm_results_are_gc_invariant(expr in arith_strategy()) {
        // The same program under a tiny-nursery collector gives the same
        // answer as without collection.
        let src = format!(
            "(define (waste n) (if (zero? n) 0 (begin (cons 1 2) (waste (- n 1)))))
             (waste 2000)
             {}",
            expr.to_scheme()
        );
        prop_assume!(expr.eval().abs() < (1 << 29));
        let mut a = Machine::new(NoCollector::new(), NullSink);
        let va = a.run_program(&src).unwrap();
        let mut b = Machine::new(GenerationalCollector::new(1 << 13, 1 << 20), NullSink);
        let vb = b.run_program(&src).unwrap();
        prop_assert_eq!(va.as_fixnum(), vb.as_fixnum());
    }
}
