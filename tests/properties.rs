//! Property-based tests of the core data structures and invariants.
//!
//! These use the in-repo [`cachegc::testkit`] driver (a deterministic,
//! dependency-free replacement for `proptest`: the pinned registry crates
//! cannot resolve in hermetic builds). Each property runs over many
//! generated cases; failures report the case seed for replay.

use std::collections::HashMap;

use cachegc::analysis::{ActivityTracker, BlockTracker, Instrument, SweepPlot};
use cachegc::core::{EngineConfig, PacketKind, Runner, Schedule};
use cachegc::gc::{
    CheneyCollector, Collector, GenerationalCollector, ImmixCollector, MarkSweepCollector,
    NoCollector, Roots,
};
use cachegc::heap::{Header, Heap, HeapConfig, ObjKind, Value};
use cachegc::sim::{Cache, CacheConfig, SetAssocCache, WriteHitPolicy, WriteMissPolicy};
use cachegc::testkit::{check, Rng};
use cachegc::trace::{
    Access, AccessKind, Context, Counters, Fanout, NullSink, Recorder, TraceSink, DYNAMIC_BASE,
};
use cachegc::vm::{read, Machine, Sexp};

// ---------------------------------------------------------------------
// Cache simulator vs an independent reference model
// ---------------------------------------------------------------------

/// A deliberately naive direct-mapped write-validate cache: a hash map
/// from cache-block index to (tag, per-word valid set). No bit tricks —
/// an independent oracle for the optimized simulator.
struct RefModel {
    size: u32,
    block: u32,
    blocks: HashMap<u32, (u32, Vec<bool>)>,
    fetches: u64,
    misses: u64,
}

impl RefModel {
    fn new(size: u32, block: u32) -> Self {
        RefModel {
            size,
            block,
            blocks: HashMap::new(),
            fetches: 0,
            misses: 0,
        }
    }

    fn access(&mut self, a: Access) {
        let block_addr = a.addr / self.block;
        let index = block_addr % (self.size / self.block);
        let tag = block_addr / (self.size / self.block);
        let word = ((a.addr % self.block) / 4) as usize;
        let words = (self.block / 4) as usize;
        let entry = self.blocks.get_mut(&index);
        match a.kind {
            AccessKind::Read => match entry {
                Some((t, valid)) if *t == tag && valid[word] => {}
                Some((t, valid)) if *t == tag => {
                    valid.iter_mut().for_each(|v| *v = true);
                    self.fetches += 1;
                    self.misses += 1;
                }
                _ => {
                    self.blocks.insert(index, (tag, vec![true; words]));
                    self.fetches += 1;
                    self.misses += 1;
                }
            },
            AccessKind::Write => match entry {
                Some((t, valid)) if *t == tag => valid[word] = true,
                _ => {
                    let mut valid = vec![false; words];
                    valid[word] = true;
                    self.blocks.insert(index, (tag, valid));
                    self.misses += 1;
                }
            },
        }
    }
}

/// An address in a window that wraps several cache sizes, read or write.
fn gen_access(rng: &mut Rng) -> Access {
    let addr = DYNAMIC_BASE + rng.range_u32(0, 1 << 18) * 4;
    if rng.bool() {
        Access::write(addr, Context::Mutator)
    } else {
        Access::read(addr, Context::Mutator)
    }
}

fn gen_accesses(rng: &mut Rng, lo: usize, hi: usize) -> Vec<Access> {
    let n = rng.range_usize(lo, hi);
    (0..n).map(|_| gen_access(rng)).collect()
}

#[test]
fn cache_matches_reference_model() {
    check("cache_matches_reference_model", 64, |rng| {
        let size = 1u32 << rng.range_u32(15, 19);
        let block = 1u32 << rng.range_u32(4, 8);
        let accesses = gen_accesses(rng, 1, 2000);
        let mut cache = Cache::new(CacheConfig::direct_mapped(size, block));
        let mut model = RefModel::new(size, block);
        for &a in &accesses {
            cache.access(a);
            model.access(a);
        }
        assert_eq!(cache.stats().fetches(), model.fetches);
        assert_eq!(cache.stats().misses(), model.misses);
    });
}

#[test]
fn one_way_set_assoc_equals_direct_mapped() {
    check("one_way_set_assoc_equals_direct_mapped", 48, |rng| {
        let accesses = gen_accesses(rng, 1, 1500);
        let cfg = CacheConfig::direct_mapped(1 << 16, 64);
        let mut dm = Cache::new(cfg);
        let mut sa = SetAssocCache::new(cfg.with_assoc(1));
        for &a in &accesses {
            dm.access(a);
            sa.access(a);
        }
        assert_eq!(dm.stats().fetches(), sa.stats().fetches());
        assert_eq!(dm.stats().misses(), sa.stats().misses());
        assert_eq!(dm.stats().writebacks(), sa.stats().writebacks());
    });
}

#[test]
fn one_way_set_assoc_equals_direct_mapped_under_every_write_policy() {
    // The write-hit/write-miss logic exists in both `Cache` and
    // `SetAssocCache`; a 1-way set is definitionally a direct-mapped
    // cache, so every policy combination must agree on the full
    // statistics, not just the default write-back/write-validate pair.
    let combos = [
        (WriteHitPolicy::WriteBack, WriteMissPolicy::WriteValidate),
        (WriteHitPolicy::WriteBack, WriteMissPolicy::FetchOnWrite),
        (WriteHitPolicy::WriteThrough, WriteMissPolicy::WriteValidate),
        (WriteHitPolicy::WriteThrough, WriteMissPolicy::FetchOnWrite),
    ];
    check("one_way_differential_write_policies", 32, |rng| {
        let size = 1u32 << rng.range_u32(14, 17);
        let block = 1u32 << rng.range_u32(4, 8);
        let n = rng.range_usize(1, 1500);
        let accesses: Vec<Access> = (0..n)
            .map(|_| {
                let addr = DYNAMIC_BASE + rng.range_u32(0, 1 << 17) * 4;
                let ctx = if rng.bool() {
                    Context::Mutator
                } else {
                    Context::Collector
                };
                match rng.range_u32(0, 3) {
                    0 => Access::read(addr, ctx),
                    1 => Access::write(addr, ctx),
                    _ => Access::alloc_write(addr, ctx),
                }
            })
            .collect();
        for (hit, miss) in combos {
            let cfg = CacheConfig::direct_mapped(size, block)
                .with_write_hit(hit)
                .with_write_miss(miss);
            let mut dm = Cache::new(cfg);
            let mut sa = SetAssocCache::new(cfg.with_assoc(1));
            for &a in &accesses {
                dm.access(a);
                sa.access(a);
            }
            assert_eq!(
                dm.stats(),
                sa.stats(),
                "full statistics identical under {hit:?}/{miss:?}"
            );
        }
    });
}

#[test]
fn higher_associativity_never_increases_capacity_misses_for_sequential() {
    // Sequential sweeps are LRU-friendly: 2-way must not fetch more
    // than 1-way on a repeated linear scan that fits in the cache.
    check("higher_assoc_sequential", 32, |rng| {
        let n = rng.range_u32(1, 512);
        let cfg = CacheConfig::direct_mapped(1 << 16, 64);
        let mut one = SetAssocCache::new(cfg.with_assoc(1));
        let mut two = SetAssocCache::new(cfg.with_assoc(2));
        for _ in 0..3 {
            for i in 0..n {
                let a = Access::read(DYNAMIC_BASE + i * 64, Context::Mutator);
                one.access(a);
                two.access(a);
            }
        }
        assert!(two.stats().fetches() <= one.stats().fetches());
    });
}

// ---------------------------------------------------------------------
// The packet-scheduled fanout is bit-identical to sequential Fanout
// ---------------------------------------------------------------------

/// The paper-style grid at test scale: several sizes × block sizes.
fn small_grid() -> Vec<Cache> {
    let mut caches = Vec::new();
    for size in [1u32 << 15, 1 << 16, 1 << 18] {
        for block in [16u32, 64, 256] {
            caches.push(Cache::new(CacheConfig::direct_mapped(size, block)));
        }
    }
    caches
}

fn assert_cells_identical(seq: Vec<Cache>, par: Vec<Cache>) {
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.into_iter().zip(par) {
        assert_eq!(s.config(), p.config(), "grid order preserved");
        let (s, p) = (s.into_stats(), p.into_stats());
        assert_eq!(s.fetches(), p.fetches());
        assert_eq!(s.misses(), p.misses());
        assert_eq!(s.writebacks(), p.writebacks());
        assert_eq!(s.blocks(), p.blocks(), "per-block counters identical");
        assert_eq!(s, p, "full statistics bit-identical");
    }
}

/// Drive `sinks` with `accesses` through the packet scheduler configured
/// by `engine`, returning the sinks after the crew drains every chunk.
fn drive_packets<S: TraceSink + Send + 'static>(
    engine: EngineConfig,
    sinks: Vec<S>,
    accesses: &[Access],
) -> Vec<S> {
    let runner = Runner::new(engine);
    let ((), out) = runner.drive(PacketKind::SinkDrain, sinks, |fan| {
        for &a in accesses {
            fan.access(a);
        }
    });
    out
}

#[test]
fn packet_fanout_matches_sequential_fanout() {
    check("packet_fanout_equivalence", 48, |rng| {
        // Mixed contexts and alloc-writes, random policy, jobs 1..=4, and
        // chunk size, so chunk and packet boundaries land everywhere
        // relative to the stream length.
        let jobs = rng.range_usize(1, 5);
        let chunk = rng.range_usize(1, 300);
        let n = rng.range_usize(0, 4000);
        let schedule = if rng.bool() {
            Schedule::WorkStealing
        } else {
            Schedule::RoundRobin
        };
        let accesses: Vec<Access> = (0..n)
            .map(|_| {
                let addr = DYNAMIC_BASE + rng.range_u32(0, 1 << 16) * 4;
                let ctx = if rng.bool() {
                    Context::Mutator
                } else {
                    Context::Collector
                };
                match rng.range_u32(0, 3) {
                    0 => Access::read(addr, ctx),
                    1 => Access::write(addr, ctx),
                    _ => Access::alloc_write(addr, ctx),
                }
            })
            .collect();
        let mut seq = Fanout::new(small_grid());
        for &a in &accesses {
            seq.access(a);
        }
        let engine = EngineConfig::jobs(jobs)
            .with_chunk(chunk)
            .with_schedule(schedule);
        let par = drive_packets(engine, small_grid(), &accesses);
        assert_cells_identical(seq.into_sinks(), par);
    });
}

#[test]
fn packet_fanout_chunk_boundary_edges() {
    // Deterministic boundary cases: empty stream, shorter than one chunk,
    // exactly one chunk, exact multiples, one over a multiple.
    const CHUNK: usize = 64;
    for n in [
        0usize,
        1,
        CHUNK - 1,
        CHUNK,
        CHUNK + 1,
        3 * CHUNK,
        3 * CHUNK + 1,
    ] {
        for jobs in [1usize, 2, 3, 4] {
            let accesses: Vec<Access> = (0..n as u32)
                .map(|i| {
                    // A stride pattern with conflicts and write-backs.
                    if i % 4 == 0 {
                        Access::write(DYNAMIC_BASE + (i % 700) * 52, Context::Mutator)
                    } else {
                        Access::read(DYNAMIC_BASE + (i % 1100) * 36, Context::Collector)
                    }
                })
                .collect();
            let mut seq = Fanout::new(small_grid());
            for &a in &accesses {
                seq.access(a);
            }
            let engine = EngineConfig::jobs(jobs).with_chunk(CHUNK);
            let par = drive_packets(engine, small_grid(), &accesses);
            assert_cells_identical(seq.into_sinks(), par);
        }
    }
}

#[test]
fn affinity_pinning_failure_degrades_to_a_plain_run() {
    // Affinity is best-effort: a pinner binary that does not exist (the
    // shape of a one-core container without `taskset`) must leave every
    // result bit-identical to the unpinned run.
    check("affinity_degrades_to_noop", 12, |rng| {
        let n = rng.range_usize(1, 2000);
        let accesses: Vec<Access> = (0..n as u32)
            .map(|i| {
                let addr = DYNAMIC_BASE + rng.range_u32(0, 1 << 15) * 4;
                if i % 3 == 0 {
                    Access::write(addr, Context::Mutator)
                } else {
                    Access::read(addr, Context::Collector)
                }
            })
            .collect();
        let mut seq = Fanout::new(small_grid());
        for &a in &accesses {
            seq.access(a);
        }
        let engine = EngineConfig::jobs(2)
            .with_schedule(Schedule::WorkStealing)
            .with_affinity(true);
        let runner = Runner::new(engine).with_affinity_command("cachegc-no-such-pinner");
        let ((), par) = runner.drive(PacketKind::SinkDrain, small_grid(), |fan| {
            for &a in &accesses {
                fan.access(a);
            }
        });
        assert_cells_identical(seq.into_sinks(), par);
    });
}

// ---------------------------------------------------------------------
// Heterogeneous instrument sets under both schedules
// ---------------------------------------------------------------------

/// A mixed instrument set: cache simulators of different geometries and
/// organizations next to the §7 behavioral analyzers, as one
/// `Vec<Instrument>`. The per-event costs differ wildly, which is exactly
/// the shape the work-stealing schedule exists for.
fn mixed_instruments() -> Vec<Instrument> {
    let cfg = CacheConfig::direct_mapped(1 << 15, 64);
    vec![
        Cache::new(cfg).into(),
        Cache::new(CacheConfig::direct_mapped(1 << 16, 256)).into(),
        SetAssocCache::new(cfg.with_assoc(2)).into(),
        BlockTracker::new(1 << 15, 64).into(),
        SweepPlot::new(cfg, 256).into(),
        ActivityTracker::new(cfg).into(),
    ]
}

#[test]
fn mixed_instruments_identical_under_both_schedules() {
    check("mixed_instruments_schedules", 24, |rng| {
        // Random jobs/chunk and a random schedule: every instrument's
        // final state must be bit-identical to the sequential oracle.
        let jobs = rng.range_usize(1, 7);
        let chunk = rng.range_usize(1, 200);
        let n = rng.range_usize(0, 2500);
        let schedule = if rng.bool() {
            Schedule::WorkStealing
        } else {
            Schedule::RoundRobin
        };
        let engine = EngineConfig::jobs(jobs)
            .with_chunk(chunk)
            .with_schedule(schedule);
        let accesses: Vec<Access> = (0..n)
            .map(|_| {
                let addr = DYNAMIC_BASE + rng.range_u32(0, 1 << 14) * 4;
                let ctx = if rng.bool() {
                    Context::Mutator
                } else {
                    Context::Collector
                };
                match rng.range_u32(0, 3) {
                    0 => Access::read(addr, ctx),
                    1 => Access::write(addr, ctx),
                    _ => Access::alloc_write(addr, ctx),
                }
            })
            .collect();
        let mut seq = Fanout::new(mixed_instruments());
        for &a in &accesses {
            seq.access(a);
        }
        let par = drive_packets(engine, mixed_instruments(), &accesses);
        assert_eq!(
            seq.into_sinks(),
            par,
            "mixed instruments bit-identical under {schedule:?}"
        );
    });
}

#[test]
fn work_stealing_chunk_boundary_and_single_worker_edges() {
    // Deterministic edge cases for the stealing backend: empty stream,
    // streams around chunk multiples, a single worker (jobs = 1 with
    // WorkStealing still routes through the stealing backend), and more
    // workers than instruments.
    const CHUNK: usize = 64;
    for n in [
        0usize,
        1,
        CHUNK - 1,
        CHUNK,
        CHUNK + 1,
        3 * CHUNK,
        3 * CHUNK + 1,
    ] {
        for jobs in [1usize, 2, 5, 16] {
            let engine = EngineConfig::jobs(jobs)
                .with_chunk(CHUNK)
                .with_schedule(Schedule::WorkStealing);
            let accesses: Vec<Access> = (0..n as u32)
                .map(|i| {
                    if i % 4 == 0 {
                        Access::alloc_write(DYNAMIC_BASE + (i % 700) * 52, Context::Mutator)
                    } else {
                        Access::read(DYNAMIC_BASE + (i % 1100) * 36, Context::Collector)
                    }
                })
                .collect();
            let mut seq = Fanout::new(mixed_instruments());
            for &a in &accesses {
                seq.access(a);
            }
            let par = drive_packets(engine, mixed_instruments(), &accesses);
            assert_eq!(seq.into_sinks(), par, "n={n} jobs={jobs}");
        }
    }
}

// ---------------------------------------------------------------------
// Trace codec: record then replay is the identity
// ---------------------------------------------------------------------

/// Collects every event verbatim, for comparing replayed streams.
struct Collect(Vec<Access>);

impl TraceSink for Collect {
    fn access(&mut self, a: Access) {
        self.0.push(a);
    }
}

/// Adversarial streams for the delta-varint codec: runs of local deltas
/// (the common case the encoding targets) interleaved with full-range
/// address jumps, `u32`-wraparound deltas, dense per-event flag flips
/// (worst case for the flags byte), and long constant-flag `alloc_init`
/// runs (best case for the run-length side).
fn gen_codec_stream(rng: &mut Rng) -> Vec<Access> {
    let mut out = Vec::new();
    let mut addr: u32 = rng.range_u32(0, u32::MAX);
    for _ in 0..rng.range_usize(1, 10) {
        let mode = rng.range_u32(0, 4);
        for i in 0..rng.range_usize(1, 150) as u32 {
            addr = match mode {
                0 => addr.wrapping_add(rng.range_u32(0, 256) * 4),
                1 => rng.range_u32(0, u32::MAX),
                2 => addr.wrapping_add(u32::MAX - rng.range_u32(0, 8) * 4),
                _ => addr.wrapping_add(4),
            };
            out.push(match mode {
                // Dense flips: the flags byte changes on every event.
                1 | 2 => {
                    let ctx = if i % 2 == 0 {
                        Context::Mutator
                    } else {
                        Context::Collector
                    };
                    if i % 4 < 2 {
                        Access::read(addr, ctx)
                    } else {
                        Access::write(addr, ctx)
                    }
                }
                // Long constant runs: alloc-init stores, flags never change.
                3 => Access::alloc_write(addr, Context::Mutator),
                _ => {
                    if rng.bool() {
                        Access::read(addr, Context::Mutator)
                    } else {
                        Access::write(addr, Context::Collector)
                    }
                }
            });
        }
    }
    out
}

#[test]
fn trace_codec_roundtrips_adversarial_streams() {
    check("trace_codec_roundtrip", 64, |rng| {
        let events = gen_codec_stream(rng);
        // Tiny random segment sizes force decoder state to carry across
        // many segment boundaries.
        let seg = rng.range_usize(16, 4096);
        let mut rec = Recorder::new().with_segment_bytes(seg);
        for &a in &events {
            rec.access(a);
        }
        let trace = rec.finish().expect("unbounded recorder never overflows");
        assert_eq!(trace.events(), events.len() as u64);
        let mut seq = Collect(Vec::new());
        trace.replay(&mut seq);
        assert_eq!(seq.0, events, "sequential replay is the identity");
        // Sharded replay feeds every sink the full stream, any job count.
        let jobs = rng.range_usize(1, 6);
        let sinks = vec![
            Collect(Vec::new()),
            Collect(Vec::new()),
            Collect(Vec::new()),
        ];
        for shard in trace.replay_sharded(sinks, jobs) {
            assert_eq!(shard.0, events, "sharded replay is the identity");
        }
    });
}

// ---------------------------------------------------------------------
// Tagged values and headers
// ---------------------------------------------------------------------

#[test]
fn fixnum_roundtrip() {
    check("fixnum_roundtrip", 256, |rng| {
        let n = rng.range_i32(-(1 << 29), 1 << 29);
        assert_eq!(Value::fixnum(n).as_fixnum(), n);
    });
}

#[test]
fn pointer_roundtrip() {
    check("pointer_roundtrip", 256, |rng| {
        let addr = rng.range_u32(DYNAMIC_BASE / 4, 0x4000_0000 / 4) * 4;
        let v = Value::ptr(addr);
        assert!(v.is_ptr() && !v.is_fixnum());
        assert_eq!(v.addr(), addr);
    });
}

#[test]
fn header_roundtrip() {
    check("header_roundtrip", 256, |rng| {
        let len = rng.range_u32(0, Header::MAX_LEN);
        let kind = *rng.choose(&ObjKind::ALL);
        let h = Header::from_bits(Header::new(kind, len).bits());
        assert_eq!(h.kind(), kind);
        assert_eq!(h.len(), len);
        // Headers are never valid first-class values.
        let v = Value::from_bits(h.bits());
        assert!(!v.is_ptr() && !v.is_fixnum());
    });
}

// ---------------------------------------------------------------------
// Collectors preserve the reachable graph
// ---------------------------------------------------------------------

/// A random object graph; object i may point at objects j < i.
#[derive(Debug, Clone)]
struct GraphSpec {
    nodes: Vec<Vec<Option<usize>>>, // per node: payload slots (None = fixnum)
    roots: Vec<usize>,
}

fn gen_graph(rng: &mut Rng) -> GraphSpec {
    let n = rng.range_usize(1, 60);
    let nodes = (0..n)
        .map(|i| {
            let slots = rng.range_usize(1, 4);
            (0..slots)
                .map(|_| {
                    if i > 0 && rng.bool() {
                        Some(rng.range_usize(0, i))
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect();
    let roots = (0..rng.range_usize(1, 4))
        .map(|_| rng.range_usize(0, n))
        .collect();
    GraphSpec { nodes, roots }
}

fn build_graph(heap: &mut Heap, spec: &GraphSpec) -> Vec<Value> {
    let mut sink = NullSink;
    let mut objs: Vec<Value> = Vec::new();
    for (i, slots) in spec.nodes.iter().enumerate() {
        let payload: Vec<Value> = slots
            .iter()
            .map(|s| match s {
                Some(j) => objs[*j],
                None => Value::fixnum(i as i32),
            })
            .collect();
        let obj = heap
            .alloc(ObjKind::Vector, &payload, Context::Mutator, &mut sink)
            .unwrap();
        objs.push(obj);
    }
    spec.roots.iter().map(|&r| objs[r]).collect()
}

/// A canonical fingerprint of the graph reachable from `roots`:
/// depth-first, with back-edges encoded by discovery index.
fn fingerprint(heap: &Heap, roots: &[Value]) -> Vec<i64> {
    fn go(heap: &Heap, v: Value, seen: &mut HashMap<u32, i64>, out: &mut Vec<i64>) {
        if v.is_fixnum() {
            out.push(v.as_fixnum() as i64);
            return;
        }
        let addr = v.addr();
        if let Some(&id) = seen.get(&addr) {
            out.push(-1000 - id);
            return;
        }
        let id = seen.len() as i64;
        seen.insert(addr, id);
        let h = Header::from_bits(heap.peek(addr));
        out.push(-1 - h.len() as i64);
        for i in 0..h.len() {
            go(
                heap,
                Value::from_bits(heap.peek(addr + 4 + 4 * i)),
                seen,
                out,
            );
        }
    }
    let mut seen = HashMap::new();
    let mut out = Vec::new();
    for &r in roots {
        go(heap, r, &mut seen, &mut out);
    }
    out
}

#[test]
fn cheney_preserves_reachable_graph() {
    check("cheney_preserves_reachable_graph", 64, |rng| {
        let spec = gen_graph(rng);
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 20));
        let mut gc = CheneyCollector::new(1 << 20);
        gc.install(&mut heap);
        let mut roots_v = build_graph(&mut heap, &spec);
        let before = fingerprint(&heap, &roots_v);
        let mut roots = Roots::registers_only(&mut roots_v);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
        let after = fingerprint(&heap, &roots_v);
        assert_eq!(before, after);
        // Compaction: everything live is packed at the bottom; a second
        // collection copies exactly the same number of bytes.
        let live = heap.dynamic_used();
        let copied_once = gc.stats().bytes_copied;
        let mut roots = Roots::registers_only(&mut roots_v);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
        assert_eq!(heap.dynamic_used(), live);
        assert_eq!(gc.stats().bytes_copied - copied_once, live as u64);
    });
}

#[test]
fn generational_preserves_reachable_graph() {
    check("generational_preserves_reachable_graph", 64, |rng| {
        let spec = gen_graph(rng);
        let mut heap = Heap::new(HeapConfig::unbounded());
        let mut gc = GenerationalCollector::new(1 << 16, 1 << 20);
        gc.install(&mut heap);
        let mut roots_v = build_graph(&mut heap, &spec);
        let before = fingerprint(&heap, &roots_v);
        let mut roots = Roots::registers_only(&mut roots_v);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
        assert_eq!(before, fingerprint(&heap, &roots_v));
    });
}

#[test]
fn immix_preserves_reachable_graph() {
    check("immix_preserves_reachable_graph", 64, |rng| {
        let spec = gen_graph(rng);
        let mut heap = Heap::new(HeapConfig::unbounded());
        let mut gc = ImmixCollector::new(1 << 20);
        gc.install(&mut heap);
        assert!(gc.prepare_alloc(&mut heap, 16, &mut NullSink));
        let mut roots_v = build_graph(&mut heap, &spec);
        let before = fingerprint(&heap, &roots_v);
        let mut roots = Roots::registers_only(&mut roots_v);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
        assert_eq!(before, fingerprint(&heap, &roots_v));
        // A second collection marks the same live set and moves nothing
        // new: the graph survives repeated collections unchanged.
        let mut roots = Roots::registers_only(&mut roots_v);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
        assert_eq!(before, fingerprint(&heap, &roots_v));
    });
}

#[test]
fn marksweep_preserves_reachable_graph_without_motion() {
    check("marksweep_preserves_reachable_graph", 64, |rng| {
        let spec = gen_graph(rng);
        let mut heap = Heap::new(HeapConfig::unbounded());
        let mut gc = MarkSweepCollector::new(1 << 20);
        gc.install(&mut heap);
        let mut roots_v = build_graph(&mut heap, &spec);
        let addrs_before: Vec<u32> = roots_v.iter().map(|v| v.addr()).collect();
        let before = fingerprint(&heap, &roots_v);
        let mut roots = Roots::registers_only(&mut roots_v);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
        assert_eq!(before, fingerprint(&heap, &roots_v));
        let addrs_after: Vec<u32> = roots_v.iter().map(|v| v.addr()).collect();
        assert_eq!(addrs_before, addrs_after, "mark-sweep never moves objects");
        assert_eq!(heap.gc_epoch(), 0, "no motion, no rehash epoch");
    });
}

/// Collects the raw trace a collection emits, for byte-for-byte
/// determinism comparisons (the PR 1 generational bug was a HashSet
/// drain that reordered remembered-set scans between identical runs).
fn collection_trace<C: Collector>(mut gc: C, spec: &GraphSpec, prepare: bool) -> Vec<Access> {
    let mut heap = Heap::new(HeapConfig::unbounded());
    gc.install(&mut heap);
    if prepare {
        assert!(gc.prepare_alloc(&mut heap, 16, &mut NullSink));
    }
    let mut roots_v = build_graph(&mut heap, spec);
    let mut sink = Collect(Vec::new());
    let mut roots = Roots::registers_only(&mut roots_v);
    gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
    // Collect again so span reuse, line marks, and evacuation-candidate
    // selection from the first cycle feed the second.
    let mut roots = Roots::registers_only(&mut roots_v);
    gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
    sink.0
}

#[test]
fn new_collectors_trace_deterministically() {
    check("new_collectors_trace_deterministically", 32, |rng| {
        let spec = gen_graph(rng);
        let a = collection_trace(ImmixCollector::new(1 << 20), &spec, true);
        let b = collection_trace(ImmixCollector::new(1 << 20), &spec, true);
        assert_eq!(a, b, "immix collection traffic is bit-deterministic");
        let a = collection_trace(MarkSweepCollector::new(1 << 20), &spec, false);
        let b = collection_trace(MarkSweepCollector::new(1 << 20), &spec, false);
        assert_eq!(a, b, "mark-sweep collection traffic is bit-deterministic");
    });
}

#[test]
fn allocation_is_contiguous() {
    check("allocation_is_contiguous", 64, |rng| {
        let sizes: Vec<u32> = (0..rng.range_usize(1, 50))
            .map(|_| rng.range_u32(0, 20))
            .collect();
        let mut heap = Heap::new(HeapConfig::unbounded());
        let mut sink = NullSink;
        let mut expected = DYNAMIC_BASE;
        for len in sizes {
            let v = heap
                .alloc_vector(len, Value::nil(), Context::Mutator, &mut sink)
                .unwrap();
            assert_eq!(v.addr(), expected);
            expected += 4 * (len + 1);
        }
        assert_eq!(heap.dynamic_used(), expected - DYNAMIC_BASE);
    });
}

// ---------------------------------------------------------------------
// Reader / printer and the VM against Rust arithmetic
// ---------------------------------------------------------------------

fn gen_symbol(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
    let mut s = String::new();
    s.push(*rng.choose(FIRST) as char);
    for _ in 0..rng.range_usize(0, 9) {
        s.push(*rng.choose(REST) as char);
    }
    s
}

fn gen_string(rng: &mut Rng) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
    (0..rng.range_usize(0, 11))
        .map(|_| *rng.choose(CHARS) as char)
        .collect()
}

fn gen_sexp(rng: &mut Rng, depth: usize) -> Sexp {
    if depth > 0 && rng.range_u32(0, 3) == 0 {
        let n = rng.range_usize(0, 6);
        return Sexp::List((0..n).map(|_| gen_sexp(rng, depth - 1)).collect());
    }
    match rng.range_u32(0, 6) {
        0 => Sexp::Sym(gen_symbol(rng)),
        1 => Sexp::Int(rng.range_i32(i32::MIN, i32::MAX) as i64),
        2 => Sexp::Float(rng.range_f64(-1e9, 1e9)),
        3 => Sexp::Str(gen_string(rng)),
        4 => Sexp::Char((b'a' + rng.range_u32(0, 26) as u8) as char),
        _ => Sexp::Bool(rng.bool()),
    }
}

#[test]
fn reader_printer_roundtrip() {
    check("reader_printer_roundtrip", 64, |rng| {
        let sexp = gen_sexp(rng, 4);
        let printed = sexp.to_string();
        let reread = read(&printed).unwrap();
        assert_eq!(reread.len(), 1, "{printed}");
        assert_eq!(&reread[0], &sexp, "{printed}");
    });
}

#[derive(Debug, Clone)]
enum Arith {
    Lit(i32),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn to_scheme(&self) -> String {
        match self {
            Arith::Lit(n) => n.to_string(),
            Arith::Add(a, b) => format!("(+ {} {})", a.to_scheme(), b.to_scheme()),
            Arith::Sub(a, b) => format!("(- {} {})", a.to_scheme(), b.to_scheme()),
            Arith::Mul(a, b) => format!("(* {} {})", a.to_scheme(), b.to_scheme()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            Arith::Lit(n) => *n as i64,
            Arith::Add(a, b) => a.eval() + b.eval(),
            Arith::Sub(a, b) => a.eval() - b.eval(),
            Arith::Mul(a, b) => a.eval() * b.eval(),
        }
    }
}

fn gen_arith(rng: &mut Rng, depth: usize) -> Arith {
    if depth == 0 || rng.range_u32(0, 3) == 0 {
        return Arith::Lit(rng.range_i32(-50, 50));
    }
    let a = Box::new(gen_arith(rng, depth - 1));
    let b = Box::new(gen_arith(rng, depth - 1));
    match rng.range_u32(0, 3) {
        0 => Arith::Add(a, b),
        1 => Arith::Sub(a, b),
        _ => Arith::Mul(a, b),
    }
}

#[test]
fn vm_arithmetic_matches_rust() {
    check("vm_arithmetic_matches_rust", 48, |rng| {
        let expr = gen_arith(rng, 4);
        let expected = expr.eval();
        if expected.abs() >= 1 << 29 {
            return; // stay in fixnum range
        }
        let mut m = Machine::new(NoCollector::new(), NullSink);
        let v = m.run_program(&expr.to_scheme()).unwrap();
        assert_eq!(v.as_fixnum() as i64, expected);
    });
}

#[test]
fn vm_results_are_gc_invariant() {
    // The same program under a tiny-nursery collector gives the same
    // answer as without collection.
    check("vm_results_are_gc_invariant", 16, |rng| {
        let expr = gen_arith(rng, 4);
        if expr.eval().abs() >= 1 << 29 {
            return;
        }
        let src = format!(
            "(define (waste n) (if (zero? n) 0 (begin (cons 1 2) (waste (- n 1)))))
             (waste 2000)
             {}",
            expr.to_scheme()
        );
        let mut a = Machine::new(NoCollector::new(), NullSink);
        let va = a.run_program(&src).unwrap();
        let mut b = Machine::new(GenerationalCollector::new(1 << 13, 1 << 20), NullSink);
        let vb = b.run_program(&src).unwrap();
        assert_eq!(va.as_fixnum(), vb.as_fixnum());
    });
}
