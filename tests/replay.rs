//! Record/replay integration tests: the scenario-keyed trace store must
//! be invisible to every result — a replayed trace drives the simulators
//! event-for-event identically to the live VM — while making each unique
//! (workload, scale, collector) scenario run the VM at most once.

use cachegc::core::{
    run_control, CollectorSpec, EngineConfig, ExperimentConfig, Runner, Schedule, TraceStore,
};
use cachegc::trace::{Access, AccessKind, Context, TraceSink};
use cachegc::workloads::Workload;

/// An order-sensitive fingerprint of an event stream: an FNV-1a chain
/// over every field of every access. Two streams hash equal only if they
/// are the same events in the same order (up to hash collision), without
/// buffering millions of events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    hash: u64,
    events: u64,
}

impl Fingerprint {
    fn new() -> Self {
        Fingerprint {
            hash: 0xcbf2_9ce4_8422_2325,
            events: 0,
        }
    }

    fn mix(&mut self, byte: u8) {
        self.hash ^= byte as u64;
        self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

impl TraceSink for Fingerprint {
    fn access(&mut self, a: Access) {
        for b in a.addr.to_le_bytes() {
            self.mix(b);
        }
        self.mix(matches!(a.kind, AccessKind::Write) as u8);
        self.mix(matches!(a.ctx, Context::Collector) as u8);
        self.mix(a.alloc_init as u8);
        self.events += 1;
    }
}

/// Every collector configuration a scenario can run under, at heap sizes
/// small enough to force real collections at scale 1.
fn specs() -> [Option<CollectorSpec>; 5] {
    [
        None,
        Some(CollectorSpec::Cheney {
            semispace_bytes: 2 << 20,
        }),
        Some(CollectorSpec::Generational {
            nursery_bytes: 1 << 20,
            old_bytes: 16 << 20,
        }),
        Some(CollectorSpec::Immix {
            heap_bytes: 4 << 20,
        }),
        Some(CollectorSpec::MarkSweep {
            heap_bytes: 4 << 20,
        }),
    ]
}

#[test]
fn replay_is_event_identical_to_live_for_every_workload_and_collector() {
    for w in Workload::ALL {
        for spec in specs() {
            let store = TraceStore::unbounded();
            let engine = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);
            let runner = Runner::new(engine).with_store(&store);
            // First pass runs the VM live and records; second replays the
            // recording through the sharded path (jobs = 2).
            let (live_stats, live) = runner
                .sinks(w.scaled(1), spec, vec![Fingerprint::new()])
                .unwrap_or_else(|e| panic!("{} {spec:?}: {e}", w.name()));
            let (replay_stats, replayed) = runner
                .sinks(w.scaled(1), spec, vec![Fingerprint::new()])
                .unwrap();
            assert!(live[0].events > 0, "{}: empty trace", w.name());
            assert_eq!(
                live[0],
                replayed[0],
                "{} {spec:?}: replay diverged from the live stream",
                w.name()
            );
            assert_eq!(
                live_stats.instructions.program(),
                replay_stats.instructions.program(),
                "{} {spec:?}: replay must return the recorded run's stats",
                w.name()
            );
            let s = store.stats();
            assert_eq!(
                (s.misses, s.hits, s.entries, s.over_budget),
                (1, 1, 1, 0),
                "{} {spec:?}: {s}",
                w.name()
            );
        }
    }
}

#[test]
fn tiny_budget_with_spill_replays_event_identical_to_live() {
    // The correctness bar for eviction + spill: a store too small to hold
    // every capture at once, backed by disk segments, still drives the
    // simulators event-for-event identically to the live VM on every
    // pass — whether a pass records live, replays a resident entry, or
    // re-materializes an evicted one from its spill file.
    let dir = std::env::temp_dir().join(format!("cachegc_replay_spill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scenarios = [Workload::Rewrite.scaled(1), Workload::Nbody.scaled(1)];
    let engine = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);

    // Live oracle fingerprints, plus each capture's encoded size so the
    // budget can be pinned between "holds either" and "holds both".
    let sizing = TraceStore::unbounded();
    let oracle_runner = Runner::new(engine).with_store(&sizing);
    let oracle: Vec<Fingerprint> = scenarios
        .iter()
        .map(|&w| {
            oracle_runner
                .sinks(w, None, vec![Fingerprint::new()])
                .unwrap()
                .1[0]
        })
        .collect();
    let sizes: Vec<u64> = sizing
        .scenario_gauges()
        .into_iter()
        .map(|(_, g)| g.bytes)
        .collect();
    let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
    assert!(min > 0, "captures are non-empty");
    let budget = max + min / 2; // fits either capture, never both

    let store = TraceStore::with_budget(budget).with_spill(dir.clone());
    let runner = Runner::new(engine).with_store(&store);
    // Two rounds over both scenarios: round one records (the second
    // capture evicts the first), round two re-materializes from disk.
    for round in 0..2 {
        for (w, expect) in scenarios.iter().zip(&oracle) {
            let (_, got) = runner.sinks(*w, None, vec![Fingerprint::new()]).unwrap();
            assert_eq!(
                got[0],
                *expect,
                "round {round}, {}: spill-backed replay diverged",
                w.workload.name()
            );
        }
    }
    let s = store.stats();
    assert!(s.evictions >= 1, "the budget forced an eviction: {s}");
    assert_eq!(s.spills, 2, "both captures wrote through to disk: {s}");
    assert!(s.spill_loads >= 1, "an evicted scenario reloaded: {s}");
    assert_eq!(
        s.over_budget, 0,
        "eviction means no capture was refused: {s}"
    );
    assert_eq!(
        s.misses + s.spill_loads,
        s.entries + s.evictions + s.over_budget + s.duplicates,
        "store arrivals balance: {s}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_store_warm_starts_from_spilled_segments() {
    // The kill-and-restart contract: a fresh store pointed at the
    // previous process's spill directory replays every spilled scenario
    // without running the VM, and the replay is event-identical.
    let dir = std::env::temp_dir().join(format!("cachegc_replay_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let w = Workload::Compile.scaled(1);
    let engine = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);

    let first = TraceStore::unbounded().with_spill(dir.clone());
    let runner = Runner::new(engine).with_store(&first);
    let (_, live) = runner.sinks(w, None, vec![Fingerprint::new()]).unwrap();
    assert_eq!(first.stats().spills, 1, "the capture wrote through");
    drop(runner);
    drop(first);

    // "Restart": a brand-new store, same directory.
    let second = TraceStore::unbounded().with_spill(dir.clone());
    let runner = Runner::new(engine).with_store(&second);
    let (_, warm) = runner.sinks(w, None, vec![Fingerprint::new()]).unwrap();
    assert_eq!(warm[0], live[0], "warm-started replay diverged");
    let s = second.stats();
    assert_eq!(
        (s.misses, s.hits, s.spill_loads),
        (0, 1, 1),
        "the restarted store never ran the VM: {s}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shared_store_runs_each_scenario_at_most_once_across_runners() {
    // The golden_check drive pattern in miniature: one store spans a
    // control grid, a control + collected comparison, and a regrid of the
    // control scenario at different cache geometry. Two unique scenarios
    // exist, so the VM runs exactly twice no matter how many passes ask.
    let mut cfg = ExperimentConfig::quick();
    cfg.cache_sizes = vec![32 << 10, 128 << 10];
    let spec = CollectorSpec::Cheney {
        semispace_bytes: 1 << 20,
    };
    let w = Workload::Rewrite.scaled(1);

    let store = TraceStore::unbounded();
    let runner = Runner::new(EngineConfig::jobs(2)).with_store(&store);
    let first = runner.control(w, &cfg).unwrap();
    let cmp = runner.comparison(w, &cfg, spec).unwrap();
    let mut regrid = cfg.clone();
    regrid.cache_sizes = vec![64 << 10];
    let second = runner.control(w, &regrid).unwrap();

    // "VM at most once": every miss produced an entry, and later passes
    // were all hits — control replayed twice (comparison + regrid), the
    // collected scenario once more would hit too.
    let s = store.stats();
    assert_eq!((s.misses, s.entries, s.over_budget), (2, 2, 0), "{s}");
    assert_eq!(s.hits, 2, "comparison control pass + regrid replayed: {s}");

    // Replayed passes agree with each other and with a live oracle.
    assert_eq!(first.i_prog, cmp.control.i_prog);
    assert_eq!(first.i_prog, second.i_prog);
    let oracle = run_control(w, &regrid).unwrap();
    assert_eq!(oracle.i_prog, second.i_prog);
    for (a, b) in oracle.cells.iter().zip(&second.cells) {
        assert_eq!(a.stats, b.stats, "replayed grid equals the live oracle");
    }
}
