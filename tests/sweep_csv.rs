//! Integration test: a small E4-style sweep, persisted through the CSV
//! report path and re-parsed, reproduces the paper's §5 shape — the
//! fetch-on-write penalty varies inversely with block size and is nearly
//! independent of cache size.

use std::path::PathBuf;

use cachegc::core::report::{Cell, Table};
use cachegc::core::{EngineConfig, ExperimentConfig, Runner, Schedule, WriteMissPolicy, FAST};
use cachegc::workloads::Workload;

/// Run the rewrite workload at tiny scale under both write-miss policies
/// and tabulate the fetch-on-write penalty per (cache size, block size).
fn e4_penalty_table() -> Table {
    let mut cfg_wv = ExperimentConfig::paper();
    cfg_wv.cache_sizes = vec![32 << 10, 256 << 10];
    cfg_wv.block_sizes = vec![16, 64, 256];
    let cfg_fow = cfg_wv
        .clone()
        .with_write_miss(WriteMissPolicy::FetchOnWrite);

    // Drive the engine the way the sweep binaries do: parallel, with the
    // work-stealing schedule, so the persisted numbers come off the same
    // code path a `--jobs 2 --schedule ws --csv` invocation uses.
    let engine = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);
    let runner = Runner::new(engine);
    let w = Workload::Rewrite.scaled(1);
    let wv = runner.control(w, &cfg_wv).expect("write-validate sweep");
    let fow = runner.control(w, &cfg_fow).expect("fetch-on-write sweep");

    let mut t = Table::new("e4_penalty", &["cache_bytes", "block_bytes", "delta"]);
    for &size in &cfg_wv.cache_sizes {
        for &block in &cfg_wv.block_sizes {
            let a = wv.cache_overhead(wv.cell(size, block).unwrap(), &FAST);
            let b = fow.cache_overhead(fow.cell(size, block).unwrap(), &FAST);
            t.row(vec![
                Cell::Bytes(size.into()),
                Cell::Bytes(block.into()),
                Cell::Float(b - a, 6),
            ]);
        }
    }
    t
}

#[test]
fn e4_shape_survives_csv_roundtrip() {
    let table = e4_penalty_table();

    let dir = std::env::temp_dir().join("cachegc_sweep_csv_test");
    let _ = std::fs::remove_dir_all(&dir);
    let path: PathBuf = dir.join("e4_penalty.csv");
    table.write_csv(&path).expect("persist CSV");

    // Re-parse the persisted file, not the in-memory table: the assertion
    // is about what a later PR diffing `results/` would actually read.
    let text = std::fs::read_to_string(&path).expect("read CSV back");
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("cache_bytes,block_bytes,delta"));
    let mut rows: Vec<(u64, u64, f64)> = Vec::new();
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 3, "uniform arity: {line}");
        rows.push((
            fields[0].parse().expect("cache bytes"),
            fields[1].parse().expect("block bytes"),
            fields[2].parse().expect("delta"),
        ));
    }
    assert_eq!(rows.len(), 6, "2 cache sizes x 3 block sizes");
    let delta = |size: u64, block: u64| -> f64 {
        rows.iter()
            .find(|r| r.0 == size && r.1 == block)
            .unwrap_or_else(|| panic!("row {size}/{block}"))
            .2
    };

    for &size in &[32u64 << 10, 256 << 10] {
        // Fetch-on-write always costs something: every write miss now
        // stalls for a memory fetch that write-validate elides.
        for &block in &[16u64, 64, 256] {
            assert!(
                delta(size, block) > 0.0,
                "fetch-on-write must cost extra at {size}/{block}"
            );
        }
        // The paper's §5 shape: the penalty varies inversely with block
        // size (smaller blocks => more write misses => more fetches).
        assert!(
            delta(size, 16) > delta(size, 64) && delta(size, 64) > delta(size, 256),
            "penalty must fall with block size at cache size {size}"
        );
    }
    // ... and is nearly independent of cache size.
    for &block in &[16u64, 64, 256] {
        let (a, b) = (delta(32 << 10, block), delta(256 << 10, block));
        let rel = (a - b).abs() / a.max(b);
        assert!(
            rel < 0.5,
            "penalty should be nearly cache-size independent at block {block}: \
             32k={a:.4} 256k={b:.4} (rel diff {rel:.2})"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
