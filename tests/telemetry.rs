//! Telemetry integration tests: the instrumentation must be *invisible*
//! to every result — identical simulator statistics with probes on or
//! off, on every driver path (live, record, replay), both schedules, one
//! worker and several — while the merged counters agree with the
//! [`RunStats`](cachegc::vm::RunStats) oracle the VM returns anyway.

use std::io::Write;
use std::sync::{Arc, Mutex};

use cachegc::core::{
    validate_manifest, CollectorSpec, EngineConfig, Manifest, ManifestConfig, Progress, Runner,
    Schedule, Telemetry, TraceStore,
};
use cachegc::sim::{Cache, CacheConfig};
use cachegc::telemetry::Counter;
use cachegc::trace::RefCounter;
use cachegc::workloads::Workload;

fn grid() -> Vec<Cache> {
    [32 << 10, 128 << 10]
        .into_iter()
        .map(|size| Cache::new(CacheConfig::direct_mapped(size, 64)))
        .collect()
}

fn spec() -> Option<CollectorSpec> {
    Some(CollectorSpec::Cheney {
        semispace_bytes: 1 << 20,
    })
}

/// Run the live (no store), record (store miss), and replay (store hit)
/// paths in order and return every cache's statistics.
fn three_paths(
    engine: EngineConfig,
    telemetry: Option<&Arc<Telemetry>>,
) -> Vec<cachegc::sim::CacheStats> {
    let w = Workload::Rewrite.scaled(1);
    let store = TraceStore::unbounded();
    let mut out = Vec::new();
    for pass in 0..3 {
        let mut runner = Runner::new(engine);
        if pass > 0 {
            runner = runner.with_store(&store);
        }
        if let Some(telemetry) = telemetry {
            runner = runner.with_telemetry(telemetry);
        }
        let (_, caches) = runner.sinks(w, spec(), grid()).unwrap();
        out.extend(caches.iter().map(|c| c.stats().clone()));
    }
    assert_eq!(store.stats().misses, 1, "pass 1 recorded");
    assert_eq!(store.stats().hits, 1, "pass 2 replayed");
    out
}

#[test]
fn telemetry_is_invisible_to_results() {
    let oracle = three_paths(EngineConfig::jobs(1), None);
    assert!(oracle[0].fetches() > 0, "the workload touched the caches");
    for schedule in [Schedule::RoundRobin, Schedule::WorkStealing] {
        for jobs in [1, 3] {
            let engine = EngineConfig::jobs(jobs).with_schedule(schedule);
            let telemetry = Arc::new(Telemetry::new());
            let with = three_paths(engine, Some(&telemetry));
            // Equality with the probe-free sequential oracle is the
            // on/off identity and the engine determinism property at
            // once (the engine is bit-identical to the oracle by the
            // properties in tests/properties.rs).
            assert_eq!(
                with, oracle,
                "telemetry perturbed results at jobs {jobs}, {schedule:?}"
            );
            // The instrumented run actually observed something.
            let snap = telemetry.snapshot();
            assert_eq!(snap.counter(Counter::VmRuns), 2, "live + record");
            assert!(snap.engine.runs > 0, "engine block populated");
        }
    }
}

#[test]
fn merged_counters_match_the_run_stats_oracle() {
    let w = Workload::Rewrite.scaled(1);
    let telemetry = Arc::new(Telemetry::new());
    let store = TraceStore::unbounded();
    let engine = EngineConfig::jobs(3).with_schedule(Schedule::WorkStealing);
    let runner = Runner::new(engine)
        .with_store(&store)
        .with_telemetry(&telemetry);

    let tallies = vec![RefCounter::new(), RefCounter::new(), RefCounter::new()];
    let (stats, tallies) = runner.sinks(w, spec(), tallies).unwrap();
    let (replay_stats, _) = runner.sinks(w, spec(), vec![RefCounter::new()]).unwrap();
    assert_eq!(
        stats.gc.collections, replay_stats.gc.collections,
        "replay returns the recorded stats"
    );

    let snap = telemetry.snapshot();
    // One live VM run (the replay is not a VM run), which triggered
    // exactly the collections the RunStats oracle reports.
    assert_eq!(snap.counter(Counter::VmRuns), 1);
    assert!(
        stats.gc.major_collections > 0,
        "heap small enough to force GC"
    );
    assert_eq!(
        snap.counter(Counter::GcMajorCollections),
        stats.gc.major_collections
    );
    assert_eq!(snap.counter(Counter::GcBytesCopied), stats.gc.bytes_copied);
    assert!(snap.counter(Counter::VmAllocs) > 0);
    assert_eq!(snap.counter(Counter::VmGcTriggers), stats.gc.collections);

    // Pause spans: one per collection, by construction.
    let pauses = snap.phase("gc_major").expect("gc_major spans recorded");
    assert_eq!(pauses.count, stats.gc.major_collections);
    assert_eq!(
        pauses.hist.count(),
        pauses.count,
        "histogram covers every pause"
    );

    // The store accounted the recorded capture exactly.
    let events = tallies[0].total();
    assert_eq!(snap.counter(Counter::StoreRecordedEvents), events);
    assert_eq!(
        snap.counter(Counter::StoreRecordedBytes),
        store.stats().bytes
    );

    // Engine totals: the record pass drove 3 sinks with every event, the
    // replay pass 1 sink — `(event, sink)` pairs sum exactly.
    assert_eq!(snap.engine.runs, 2);
    assert_eq!(snap.engine.events_applied(), events * 3 + events);

    // Phases: one of each driver span.
    for phase in ["vm_execute", "record", "replay", "sink_drain"] {
        assert_eq!(snap.phase(phase).unwrap().count, 1, "{phase}");
    }
}

/// A `Write` handle into a shared buffer, so a [`Progress`] sink can be
/// inspected after the run.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn progress_ticks_once_per_pass_into_its_own_writer() {
    let w = Workload::Rewrite.scaled(1);
    let store = TraceStore::unbounded();
    let buf = Arc::new(Mutex::new(Vec::new()));
    let progress = Progress::to_writer("e0_demo", 2, Box::new(SharedBuf(buf.clone())));
    let runner = Runner::new(EngineConfig::jobs(2))
        .with_store(&store)
        .with_progress(&progress);

    let (_, first) = runner.sinks(w, spec(), grid()).unwrap();
    let (_, second) = runner.sinks(w, spec(), grid()).unwrap();
    assert_eq!(progress.completed(), 2);

    // Progress went to its writer alone, and never changed a result: the
    // two passes (record, then replay) agree with a progress-free oracle.
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text:?}");
    assert!(lines[0].starts_with("[e0_demo] pass 1/2 done"), "{text:?}");
    assert!(lines[1].starts_with("[e0_demo] pass 2/2 done"), "{text:?}");
    assert!(lines[1].contains("store: 1 hits, 1 misses"), "{text:?}");
    let oracle = three_paths(EngineConfig::jobs(2), None);
    let stats: Vec<_> = first
        .iter()
        .chain(&second)
        .map(|c| c.stats().clone())
        .collect();
    assert_eq!(&oracle[2..], &stats[..], "record + replay match the oracle");
}

#[test]
fn a_real_runs_manifest_validates_end_to_end() {
    let w = Workload::Rewrite.scaled(1);
    let telemetry = Arc::new(Telemetry::new());
    let store = TraceStore::unbounded();
    let runner = Runner::new(EngineConfig::jobs(2))
        .with_store(&store)
        .with_telemetry(&telemetry);
    runner.sinks(w, spec(), grid()).unwrap();
    runner.sinks(w, spec(), grid()).unwrap();

    let manifest = Manifest::gather(
        ManifestConfig {
            experiment: "telemetry_it".into(),
            scale: 1,
            jobs: 2,
            jobs_requested: 2,
            schedule: "round-robin".into(),
            trace_cache: "unbounded".into(),
        },
        &telemetry.snapshot(),
        Some(&store),
    );
    let json = manifest.to_json();
    validate_manifest(&json).unwrap();
    // The bench-side strict checker accepts it too: vm_execute spans are
    // present and the store's hit is backed by a replay span.
    cachegc_bench::golden::check_manifest(&json).unwrap();
    assert!(json.contains("\"cheney/1.0M\"") || json.contains("rewrite@1"));
}

#[test]
fn spill_and_eviction_counters_flow_into_a_valid_manifest() {
    let dir = std::env::temp_dir().join(format!("cachegc_tm_spill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scenarios = [Workload::Rewrite.scaled(1), Workload::Nbody.scaled(1)];
    let engine = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);

    // Size the budget between "holds either capture" and "holds both".
    let sizing = TraceStore::unbounded();
    let sizing_runner = Runner::new(engine).with_store(&sizing);
    for &w in &scenarios {
        sizing_runner.sinks(w, None, grid()).unwrap();
    }
    let sizes: Vec<u64> = sizing
        .scenario_gauges()
        .into_iter()
        .map(|(_, g)| g.bytes)
        .collect();
    let budget = sizes.iter().max().unwrap() + sizes.iter().min().unwrap() / 2;

    let telemetry = Arc::new(Telemetry::new());
    let store = TraceStore::with_budget(budget).with_spill(dir.clone());
    let runner = Runner::new(engine)
        .with_store(&store)
        .with_telemetry(&telemetry);
    // Record both (the second capture evicts the first), then reload the
    // first from disk (which in turn evicts the second).
    for &w in scenarios.iter().chain([&scenarios[0]]) {
        runner.sinks(w, None, grid()).unwrap();
    }
    let snap = telemetry.snapshot();
    let s = store.stats();
    assert_eq!(snap.counter(Counter::StoreEvictions), s.evictions);
    assert!(s.evictions >= 1, "{s}");
    assert_eq!(snap.counter(Counter::StoreBytesEvicted), s.bytes_evicted);
    assert_eq!(snap.counter(Counter::StoreSpills), s.spills);
    assert_eq!(snap.counter(Counter::StoreSpillLoads), s.spill_loads);
    assert!(s.spill_loads >= 1, "{s}");

    let manifest = Manifest::gather(
        ManifestConfig {
            experiment: "telemetry_it".into(),
            scale: 1,
            jobs: 2,
            jobs_requested: 2,
            schedule: "work-stealing".into(),
            trace_cache: format!("{budget} bytes, spill {}", dir.display()),
        },
        &telemetry.snapshot(),
        Some(&store),
    );
    let json = manifest.to_json();
    validate_manifest(&json).unwrap();
    cachegc_bench::golden::check_manifest(&json).unwrap();
    assert!(json.contains("\"spill_loads\""));

    // A restarted store warm-starts without VM runs, and its manifest is
    // still accepted: spill loads stand in for vm_execute spans.
    let warm_telemetry = Arc::new(Telemetry::new());
    let warm_store = TraceStore::with_budget(budget).with_spill(dir.clone());
    let warm_runner = Runner::new(engine)
        .with_store(&warm_store)
        .with_telemetry(&warm_telemetry);
    warm_runner.sinks(scenarios[0], None, grid()).unwrap();
    assert_eq!(warm_telemetry.snapshot().counter(Counter::VmRuns), 0);
    let warm = Manifest::gather(
        ManifestConfig {
            experiment: "telemetry_it".into(),
            scale: 1,
            jobs: 2,
            jobs_requested: 2,
            schedule: "work-stealing".into(),
            trace_cache: format!("{budget} bytes, spill {}", dir.display()),
        },
        &warm_telemetry.snapshot(),
        Some(&warm_store),
    );
    cachegc_bench::golden::check_manifest(&warm.to_json()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn over_budget_captures_warn_and_count() {
    let w = Workload::Rewrite.scaled(1);
    let telemetry = Arc::new(Telemetry::new());
    let store = TraceStore::with_budget(8);
    let runner = Runner::new(EngineConfig::jobs(1))
        .with_store(&store)
        .with_telemetry(&telemetry);
    runner.sinks(w, spec(), grid()).unwrap();

    let snap = telemetry.snapshot();
    assert_eq!(snap.counter(Counter::StoreCapturesDropped), 1);
    assert_eq!(snap.counter(Counter::Warnings), 1);
    assert_eq!(snap.counter(Counter::StoreRecordedBytes), 0);
    assert_eq!(store.stats().over_budget, 1);
    assert_eq!(store.stats().entries, 0);
}
