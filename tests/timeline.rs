//! Timeline and trace-export integration tests: the two observability
//! channels must be *exact* and *invisible*.
//!
//! Exact: every committed timeline's per-window deltas sum to its
//! aggregate [`CacheTotals`] with integer equality, and the aggregate
//! equals an independent cache of the same geometry riding the same
//! stream — on the live, record, and replay driver paths, under both
//! replay kernels, at one worker and several. Invisible: attaching the
//! recorder and a span-capturing telemetry registry changes no result a
//! sink reports, and the exported artifacts validate against their own
//! schemas (`cachegc-timeline-v1` JSONL, Chrome trace-event JSON with
//! named worker rows).

use std::sync::Arc;

use cachegc::core::{
    chrome_trace_json, validate_chrome_trace, validate_timeline, CollectorSpec, EngineConfig,
    ReplayKernel, Runner, Schedule, Telemetry, TimelineRecorder, TimelineSpec, TraceStore,
    TIMELINE_SCHEMA,
};
use cachegc::sim::{Cache, CacheConfig, CacheStats};
use cachegc::workloads::Workload;

/// Small windows against a scale-1 run: many windows per pass, so the
/// sum property is exercised across real window boundaries and the GC
/// epoch splits between them.
fn tl_spec() -> TimelineSpec {
    TimelineSpec {
        cache: CacheConfig::direct_mapped(16 << 10, 32),
        window_events: 4096,
    }
}

fn spec() -> Option<CollectorSpec> {
    Some(CollectorSpec::Cheney {
        semispace_bytes: 512 << 10,
    })
}

/// A sink grid whose first cache shares the timeline's geometry, so the
/// recorder can be checked against an independently-driven cache.
fn grid() -> Vec<Cache> {
    vec![
        Cache::new(tl_spec().cache),
        Cache::new(CacheConfig::direct_mapped(128 << 10, 32)),
    ]
}

#[test]
fn window_sums_reconstruct_the_aggregate_on_every_path() {
    let w = Workload::Rewrite.scaled(1);
    let mut oracle: Option<CacheStats> = None;
    for kernel in [ReplayKernel::Scalar, ReplayKernel::Batch] {
        for jobs in [1, 2, 3] {
            let engine = EngineConfig::jobs(jobs)
                .with_schedule(Schedule::WorkStealing)
                .with_replay_kernel(kernel);
            let store = TraceStore::unbounded();
            let recorder = TimelineRecorder::new(tl_spec());
            let runner = Runner::new(engine)
                .with_store(&store)
                .with_timeline(&recorder);
            // Pass 1 records (live VM), pass 2 replays the capture.
            let (_, sinks) = runner.sinks(w, spec(), grid()).unwrap();
            let (_, replay_sinks) = runner.sinks(w, spec(), grid()).unwrap();
            assert_eq!(store.stats().hits, 1, "pass 2 replayed");

            let twin = sinks[0].stats().clone();
            assert!(twin.fetches() > 0, "the workload touched the caches");
            assert_eq!(replay_sinks[0].stats(), &twin, "replay is bit-identical");
            match &oracle {
                None => oracle = Some(twin.clone()),
                Some(o) => assert_eq!(&twin, o, "jobs {jobs}, {kernel:?}"),
            }

            let runs = recorder.runs();
            assert_eq!(runs.len(), 2, "one committed timeline per pass");
            for run in &runs {
                assert!(
                    run.report.windows.len() > 1,
                    "{}: several windows at this scale",
                    run.label
                );
                // The invariant under test: integer-exact reconstruction
                // of the aggregate from the per-window deltas...
                assert_eq!(
                    run.report.windows_sum(),
                    run.report.totals,
                    "{} (jobs {jobs}, {kernel:?})",
                    run.label
                );
                // ...and the aggregate is the truth: it matches the
                // same-geometry cache that rode the sink fanout.
                assert_eq!(run.report.totals, twin.totals(), "{}", run.label);
                assert!(
                    run.report.collections.len() > 1,
                    "{}: a 512 KB semispace forces several collections",
                    run.label
                );
                // Epoch-aligned windows: each is purely mutator or purely
                // collector, so per-context attribution is exact.
                let gc_reads: u64 = run
                    .report
                    .windows
                    .iter()
                    .filter(|w| w.ctx == cachegc::trace::Context::Collector)
                    .map(|w| w.delta.collector_reads)
                    .sum();
                assert!(gc_reads > 0, "{}: collector windows present", run.label);
            }
            // Both passes saw the same stream, so their timelines agree
            // bit-for-bit (labels too: same scenario, recorded then hit).
            assert_eq!(runs[0].report, runs[1].report);

            // The JSONL export round-trips through the validator.
            let jsonl = recorder.to_jsonl("timeline_it");
            assert!(jsonl.starts_with(&format!("{{\"schema\": \"{TIMELINE_SCHEMA}\"")));
            validate_timeline(&jsonl).unwrap();
        }
    }
}

#[test]
fn observability_is_invisible_to_results() {
    let w = Workload::Rewrite.scaled(1);
    let bare = Runner::new(EngineConfig::jobs(2));
    let (_, oracle) = bare.sinks(w, spec(), grid()).unwrap();

    let recorder = TimelineRecorder::new(tl_spec());
    let telemetry = Arc::new(Telemetry::with_spans());
    let store = TraceStore::unbounded();
    let watched = Runner::new(EngineConfig::jobs(2))
        .with_store(&store)
        .with_timeline(&recorder)
        .with_telemetry(&telemetry);
    let (_, live) = watched.sinks(w, spec(), grid()).unwrap();
    let (_, replay) = watched.sinks(w, spec(), grid()).unwrap();

    for (i, o) in oracle.iter().enumerate() {
        assert_eq!(live[i].stats(), o.stats(), "sink {i} live");
        assert_eq!(replay[i].stats(), o.stats(), "sink {i} replay");
    }
}

#[test]
fn a_two_worker_chrome_trace_validates_with_worker_rows() {
    let w = Workload::Rewrite.scaled(1);
    let telemetry = Arc::new(Telemetry::with_spans());
    let runner = Runner::new(EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing))
        .with_telemetry(&telemetry);
    let _shard = telemetry.attach();
    runner.sinks(w, spec(), grid()).unwrap();
    drop(_shard);

    let trace = chrome_trace_json(&telemetry.snapshot());
    let summary = validate_chrome_trace(&trace).unwrap();
    assert!(summary.spans > 0, "packet spans were captured");
    assert!(
        summary.workers >= 2,
        "both crew workers own a named row: {summary:?}"
    );
    // A span-free registry still exports a valid (if empty) trace.
    let quiet = chrome_trace_json(&Telemetry::new().snapshot());
    let summary = validate_chrome_trace(&quiet).unwrap();
    assert_eq!(summary.spans, 0);
}
